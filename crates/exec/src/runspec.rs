//! Run specialization: fused inner-loop macro-ops (DESIGN.md §4f).
//!
//! The bytecode engine's generic `Instr::For` pays per-point, per-instr
//! dispatch plus a bounds check and an atomic round-trip for every load
//! and store — ~100 ns/point on the 5-point Gauss-Seidel where a
//! hand-written loop runs in single-digit nanoseconds. This module
//! closes that gap with the classic superinstruction move (Ertl &
//! Gregg) shaped by the paper's §2.4 *partial vectorization*: process a
//! whole contiguous innermost-dimension run of points in **one**
//! dispatch.
//!
//! The pipeline has a compile-time half and a run-time half:
//!
//! * **[`analyze`]** (tape-compile time) recognizes a straight-line
//!   stencil point body — integer index arithmetic affine in the
//!   induction variable, scalar loads/stores, pure float ops — and
//!   produces a [`RunSpec`]: the body's accesses and float ops in
//!   order, plus a *probe tape* holding the body's integer/constant
//!   subset. Anything else (nested control flow, vector ops, divisions
//!   of the induction variable, …) simply stays on the generic path.
//! * **Planning** (each time the loop executes) runs the probe tape at
//!   the first two iterations to resolve every access to
//!   `base + t·delta` flat-address form, bounds-checks both run
//!   endpoints through the checked [`BufferView`] path (indices are
//!   affine in `t`, so the endpoints bound every iteration), and
//!   classifies each operation:
//!   - a load is **streamable** when no store of the body can write a
//!     location the load would have observed differently under the
//!     original point-by-point order (exact arithmetic on the
//!     base/delta pairs; any imprecision falls back to *recurrent*);
//!   - a float op is streamable when all its operands are;
//!   - stores (and everything downstream of a loop-carried load, e.g.
//!     the Gauss-Seidel west neighbour) are **recurrent**.
//! * **Execution** then runs the streamed ops one *operation at a time*
//!   over a chunk of iterations — flat `f64` stripe buffers indexed by
//!   a compile-time-constant chunk stride, exactly the loops LLVM
//!   autovectorizes — and finishes each point with the short recurrent
//!   tail in original body order. Because streamed values are
//!   bit-identical to what the sequential order would have produced
//!   (that is what the hazard analysis guarantees) and the recurrent
//!   tail *is* the sequential order, results match the interpreter
//!   bit-for-bit.
//!
//! Memory is accessed through [`TileView`] — raw non-atomic words,
//! justified by Eq. (3) schedule disjointness and policed by the
//! debug-mode [`crate::buffer::overlap`] checker.
//!
//! [`BufferView`]: crate::buffer::BufferView

use crate::buffer::TileView;
use crate::bytecode::{FOp, FUn};

/// Iteration-count threshold below which a run stays on the generic
/// loop (probing two iterations plus planning doesn't pay for itself).
pub(crate) const MIN_RUN: usize = 4;

/// Iterations processed per streamed chunk. Also the compile-time
/// stride between stripe rows, so streamed loops index with a constant
/// multiplier. 256 iterations × one `f64` stripe per streamed op keeps
/// the working set inside L1/L2 for realistic bodies.
pub(crate) const CHUNK: usize = 256;

/// A float operand of a run body operation, resolved at analysis time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FRef {
    /// A float register whose value is invariant across the run (outer
    /// definition, or produced once by the probe tape's constants).
    Inv(u32),
    /// The value produced by `ops[i]` of the same iteration.
    Op(u16),
}

/// One operation of the specialized run body, in original body order.
#[derive(Clone, Debug)]
pub(crate) enum RunOp {
    /// Scalar load; `acc` indexes the per-run access plan.
    Load {
        buf: u32,
        idx: Box<[u32]>,
        acc: u16,
    },
    /// Scalar store of `src`.
    Store {
        buf: u32,
        idx: Box<[u32]>,
        src: FRef,
        acc: u16,
    },
    Bin {
        op: FOp,
        a: FRef,
        b: FRef,
    },
    Un {
        op: FUn,
        a: FRef,
    },
    Fma {
        a: FRef,
        b: FRef,
        c: FRef,
    },
}

/// One pre-decoded instruction of a run's probe program — the body's
/// integer/constant subset (`const`s, affine index arithmetic,
/// `memref.dim`), flattened out of [`Instr`] form so executing it is a
/// dispatch over six small variants instead of the full tape
/// interpreter.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ProbeOp {
    CF { dst: u32, v: f64 },
    CI { dst: u32, v: i64 },
    Mov { dst: u32, src: u32 },
    S2F { dst: u32, src: u32 },
    Dim { dst: u32, buf: u32, dim: u32 },
    Bin { op: IOp, dst: u32, a: u32, b: u32 },
}

/// Compile-time description of a specializable innermost loop body,
/// attached to `Instr::For`.
#[derive(Clone, Debug)]
pub(crate) struct RunSpec {
    /// The body's integer/constant subset in body order, run once per
    /// loop execution (at `lb`) to resolve accesses; float constants
    /// land in their registers as a side effect.
    pub probe: Box<[ProbeOp]>,
    /// The iv-dependent subset of `probe`, re-evaluated at `lb + step`
    /// to obtain the per-iteration index deltas without re-running the
    /// run-invariant majority of the program.
    pub probe_iv: Box<[ProbeOp]>,
    /// Loads, stores and float ops in body order.
    pub ops: Box<[RunOp]>,
    /// Index registers of every access (loads and stores, in body
    /// order), concatenated — lets the per-run index snapshots be one
    /// tight pass instead of a re-scan of `ops`.
    pub idx_regs: Box<[u32]>,
    /// Per-iteration dynamic-stat increments of the generic body, used
    /// to bulk-account [`crate::ExecStats`] identically to
    /// point-by-point execution.
    pub loads_per_iter: u64,
    pub stores_per_iter: u64,
    pub flops_per_iter: u64,
    pub index_ops_per_iter: u64,
}

/// One access of one run execution, resolved to flat-address form.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessPlan {
    /// Flat address at iteration 0.
    pub base: isize,
    /// Flat-address step per iteration.
    pub delta: isize,
    /// Raw storage handle.
    pub tile: TileView,
    /// Position of the access in `ops` (body order, for hazard
    /// direction).
    pub pos: u32,
    /// Whether this access is a store.
    pub store: bool,
}

/// Source operand of a streamed (op-at-a-time) operation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SSrc {
    /// Stripe row of an earlier streamed op.
    Slot(u32),
    /// Run-invariant value, materialized at plan time.
    Const(f64),
}

/// One streamed operation: writes stripe row `slot` for a whole chunk.
#[derive(Clone, Debug)]
pub(crate) enum SOp {
    Load {
        slot: u32,
        base: isize,
        delta: isize,
        tile: TileView,
        /// Access-plan index, for base patching on plan-cache hits.
        acc: u16,
    },
    Bin {
        op: FOp,
        slot: u32,
        a: SSrc,
        b: SSrc,
    },
    Un {
        op: FUn,
        slot: u32,
        a: SSrc,
    },
    Fma {
        slot: u32,
        a: SSrc,
        b: SSrc,
        c: SSrc,
    },
    /// A binary op whose two operands are load rows consumed by nothing
    /// else: the staging copies are skipped and both tiles are read
    /// directly in one fused pass (see [`fuse_stream_loads`]).
    BinLoads {
        op: FOp,
        slot: u32,
        a_base: isize,
        a_delta: isize,
        a_tile: TileView,
        a_acc: u16,
        b_base: isize,
        b_delta: isize,
        b_tile: TileView,
        b_acc: u16,
    },
}

/// Source operand of a recurrent (point-at-a-time) operation: an arena
/// offset plus a per-iteration step. Stripe rows step by 1 with the
/// in-chunk index; recurrent values and materialized constants are read
/// at a fixed offset (step 0). Resolving the operand kind at plan time
/// leaves no dispatch on the per-point path — each read is one indexed
/// load.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RRef {
    pub off: u32,
    pub step: u32,
}

/// One link of a fused [`ROp::Chain`]: applies `op` between the
/// running accumulator and `other`, with `acc_rhs` preserving which
/// side of the original (non-commutative) operation the accumulator
/// was on.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChainLink {
    pub op: FOp,
    pub other: RRef,
    pub acc_rhs: bool,
}

/// One recurrent operation, executed in body order for every point.
/// Value-producing ops write the arena at `dst` (the vals region).
#[derive(Clone, Debug)]
pub(crate) enum ROp {
    Load {
        dst: u32,
        base: isize,
        delta: isize,
        tile: TileView,
        /// Access-plan index, for base patching on plan-cache hits.
        acc: u16,
    },
    /// Steady-state replacement for a `Load` that re-reads the value
    /// stored one iteration earlier by this run's own store (offset
    /// ratio k = −1 in `hazard` terms): the arena still holds that
    /// value, so the memory round-trip is a copy.
    Carry {
        dst: u32,
        src: u32,
    },
    Store {
        src: RRef,
        base: isize,
        delta: isize,
        tile: TileView,
        /// Access-plan index, for base patching on plan-cache hits.
        acc: u16,
    },
    Bin {
        op: FOp,
        dst: u32,
        a: RRef,
        b: RRef,
    },
    Un {
        op: FUn,
        dst: u32,
        a: RRef,
    },
    Fma {
        dst: u32,
        a: RRef,
        b: RRef,
        c: RRef,
    },
    /// A fused run of consecutive `Bin` ops threading one accumulator
    /// (each intermediate result consumed only by the next op): the
    /// accumulator lives in a register for the whole sequence and only
    /// the final value is written back — one dispatch instead of one
    /// per op. Operand order and operation order are exactly those of
    /// the unfused ops, so the result is bit-identical.
    Chain {
        dst: u32,
        init: RRef,
        links: Box<[ChainLink]>,
    },
    /// A [`ROp::Chain`] whose final value is also the source of the
    /// immediately following store: the store rides along in the same
    /// dispatch. The value is still written to `dst` — the next
    /// iteration's forwarded operands read it there.
    ChainStore {
        dst: u32,
        init: RRef,
        links: Box<[ChainLink]>,
        base: isize,
        delta: isize,
        tile: TileView,
        /// Access-plan index, for base patching on plan-cache hits.
        acc: u16,
    },
}

/// Reusable per-frame run state. Lives in the register file so repeated
/// runs (every tile row of every block) reuse the allocations; cloning
/// a frame for a wavefront worker hands out *empty* scratch instead of
/// copying plans that are only valid mid-run.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Access plans, indexed by `RunOp::{Load,Store}::acc`.
    pub acc: Vec<AccessPlan>,
    /// Index values of the probe at iteration 0 / iteration 1.
    pub idx0: Vec<i64>,
    pub idx1: Vec<i64>,
    /// Streamed plan of the current run.
    pub stream: Vec<SOp>,
    /// Recurrent plan: the faithful tape for the run's first iteration
    /// and the steady-state tape (k = −1 loads forwarded) for the rest.
    pub rec_first: Vec<ROp>,
    pub rec_steady: Vec<ROp>,
    /// Per-op streamed flag and stripe slot.
    streamed: Vec<bool>,
    slot_of: Vec<u32>,
    /// Shared f64 arena: `n_slots` stripe rows of `CHUNK` elements,
    /// then one val per body op, then materialized constants. All
    /// recurrent operands resolve to offsets into this one slice.
    pub arena: Vec<f64>,
    /// Plan cache: address of the `RunSpec` the current `stream`/`rec`
    /// were built for (0 = none), the run length, the per-access
    /// signature `(delta, tile id, base − base₀)`, and the materialized
    /// invariant values. When the signature of the next run matches,
    /// classification is provably identical and only the flat bases
    /// need patching — the common case for every row of every tile.
    cached_spec: usize,
    cached_n: usize,
    sig: Vec<(isize, usize, isize)>,
    inv_vals: Vec<(u32, f64)>,
}

impl Clone for RunScratch {
    fn clone(&self) -> Self {
        RunScratch::default()
    }
}

/// Classifies every op of `spec` as streamed or recurrent for a run of
/// `n` iterations and builds the execution plans into `scratch`
/// (`scratch.acc` must already hold the resolved access plans).
/// Run-invariant operands are materialized from `fregs`.
pub(crate) fn build_plan(spec: &RunSpec, n: usize, fregs: &[f64], scratch: &mut RunScratch) {
    let ops = &spec.ops;
    if plan_cache_hit(spec, n, fregs, scratch) {
        patch_bases(scratch);
        return;
    }
    scratch.streamed.clear();
    scratch.streamed.resize(ops.len(), false);
    scratch.slot_of.clear();
    scratch.slot_of.resize(ops.len(), 0);
    scratch.stream.clear();
    scratch.rec_first.clear();
    scratch.rec_steady.clear();

    // Hazard classification: a load is streamable iff no store of the
    // body can hit one of its addresses "from the past" of the original
    // interleaving (see `hazard`); a float op is streamable iff all its
    // operands are.
    for i in 0..ops.len() {
        let s = match &ops[i] {
            RunOp::Load { acc, .. } => {
                let load = scratch.acc[*acc as usize];
                !scratch
                    .acc
                    .iter()
                    .any(|store| store.store && hazard(&load, store, n))
            }
            RunOp::Store { .. } => false,
            RunOp::Bin { a, b, .. } => {
                fref_streamed(*a, &scratch.streamed) && fref_streamed(*b, &scratch.streamed)
            }
            RunOp::Un { a, .. } => fref_streamed(*a, &scratch.streamed),
            RunOp::Fma { a, b, c } => {
                fref_streamed(*a, &scratch.streamed)
                    && fref_streamed(*b, &scratch.streamed)
                    && fref_streamed(*c, &scratch.streamed)
            }
        };
        scratch.streamed[i] = s;
    }

    // Plan construction: streamed ops get stripe slots in body order;
    // everything else goes to the recurrent tail, also in body order.
    // The arena is sized up front (grow-only: stripes are fully written
    // before they are read within each chunk, and vals/constants are
    // rewritten below, so stale contents never leak and the common
    // run-after-run case skips the memset) so that baked offsets stay
    // valid while constants are materialized into its tail.
    let total_slots = scratch.streamed.iter().filter(|&&x| x).count() as u32;
    let arena_len = total_slots as usize * CHUNK + ops.len() * 4;
    if scratch.arena.len() < arena_len {
        scratch.arena.resize(arena_len, 0.0);
    }
    let mut next_const = total_slots as usize * CHUNK + ops.len();
    let mut n_slots = 0u32;
    for (i, op) in ops.iter().enumerate() {
        if scratch.streamed[i] {
            let slot = n_slots;
            n_slots += 1;
            scratch.slot_of[i] = slot;
            let sop = match op {
                RunOp::Load { acc, .. } => {
                    let a = scratch.acc[*acc as usize];
                    SOp::Load {
                        slot,
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Bin { op, a, b } => SOp::Bin {
                    op: *op,
                    slot,
                    a: ssrc(*a, fregs, &scratch.slot_of),
                    b: ssrc(*b, fregs, &scratch.slot_of),
                },
                RunOp::Un { op, a } => SOp::Un {
                    op: *op,
                    slot,
                    a: ssrc(*a, fregs, &scratch.slot_of),
                },
                RunOp::Fma { a, b, c } => SOp::Fma {
                    slot,
                    a: ssrc(*a, fregs, &scratch.slot_of),
                    b: ssrc(*b, fregs, &scratch.slot_of),
                    c: ssrc(*c, fregs, &scratch.slot_of),
                },
                RunOp::Store { .. } => unreachable!("stores are never streamed"),
            };
            scratch.stream.push(sop);
        } else {
            let vals_base = total_slots as usize * CHUNK;
            let rop = match op {
                RunOp::Load { acc, .. } => {
                    let a = scratch.acc[*acc as usize];
                    ROp::Load {
                        dst: (vals_base + i) as u32,
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Store { src, acc, .. } => {
                    let a = scratch.acc[*acc as usize];
                    ROp::Store {
                        src: rref(
                            *src,
                            fregs,
                            &scratch.streamed,
                            &scratch.slot_of,
                            vals_base,
                            &mut scratch.arena,
                            &mut next_const,
                        ),
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Bin { op, a, b } => ROp::Bin {
                    op: *op,
                    dst: (vals_base + i) as u32,
                    a: rref(
                        *a,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                    b: rref(
                        *b,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                },
                RunOp::Un { op, a } => ROp::Un {
                    op: *op,
                    dst: (vals_base + i) as u32,
                    a: rref(
                        *a,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                },
                RunOp::Fma { a, b, c } => ROp::Fma {
                    dst: (vals_base + i) as u32,
                    a: rref(
                        *a,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                    b: rref(
                        *b,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                    c: rref(
                        *c,
                        fregs,
                        &scratch.streamed,
                        &scratch.slot_of,
                        vals_base,
                        &mut scratch.arena,
                        &mut next_const,
                    ),
                },
            };
            scratch.rec_first.push(rop);
        }
    }
    debug_assert_eq!(n_slots, total_slots);
    fuse_stream_loads(scratch);
    build_steady(scratch, total_slots as usize * CHUNK);
    if std::env::var_os("INSTENCIL_RUN_DEBUG").is_some() && scratch.cached_spec == 0 {
        eprintln!(
            "plan: probe={} probe_iv={} ops={} accs={}",
            spec.probe.len(),
            spec.probe_iv.len(),
            spec.ops.len(),
            scratch.acc.len()
        );
        eprintln!("plan: stream={:?}", scratch.stream);
        eprintln!("plan: rec_first={:?}", scratch.rec_first);
        eprintln!("plan: rec_steady={:?}", scratch.rec_steady);
    }
    // Record the cache signature for the next run.
    scratch.cached_spec = spec as *const RunSpec as usize;
    scratch.cached_n = n;
    let base0 = scratch.acc[0].base;
    scratch.sig.clear();
    scratch
        .sig
        .extend(scratch.acc.iter().map(|a| (a.delta, a.tile.id(), a.base - base0)));
    scratch.inv_vals.clear();
    for op in ops.iter() {
        let mut note = |r: &FRef| {
            if let FRef::Inv(reg) = r {
                scratch.inv_vals.push((*reg, fregs[*reg as usize]));
            }
        };
        match op {
            RunOp::Bin { a, b, .. } => {
                note(a);
                note(b);
            }
            RunOp::Un { a, .. } => note(a),
            RunOp::Fma { a, b, c } => {
                note(a);
                note(b);
                note(c);
            }
            RunOp::Store { src, .. } => note(src),
            RunOp::Load { .. } => {}
        }
    }
}

/// Fuses `Bin(Slot(x), Slot(y))` with the loads producing rows `x` and
/// `y` into one [`SOp::BinLoads`] when this op is the rows' only
/// consumer — in the stream and in the recurrent tapes. The two staging
/// passes over the chunk disappear; the fused loop reads both tiles
/// directly, which is the same read the staging copy would have done.
fn fuse_stream_loads(scratch: &mut RunScratch) {
    let row_read = |r: &RRef, slot: u32| r.step == 1 && r.off == slot * CHUNK as u32;
    let rec_reads = |slot: u32| {
        scratch.rec_first.iter().any(|op| match op {
            ROp::Load { .. } | ROp::Carry { .. } => false,
            ROp::Store { src, .. } => row_read(src, slot),
            ROp::Bin { a, b, .. } => row_read(a, slot) || row_read(b, slot),
            ROp::Un { a, .. } => row_read(a, slot),
            ROp::Fma { a, b, c, .. } => row_read(a, slot) || row_read(b, slot) || row_read(c, slot),
            ROp::Chain { .. } | ROp::ChainStore { .. } => {
                unreachable!("stream fusion runs before build_steady")
            }
        })
    };
    for k in 0..scratch.stream.len() {
        let SOp::Bin {
            op,
            slot,
            a: SSrc::Slot(x),
            b: SSrc::Slot(y),
        } = scratch.stream[k]
        else {
            continue;
        };
        let reads = |s: &SSrc, r| matches!(s, SSrc::Slot(v) if *v == r);
        let other_consumer = |r: u32| {
            scratch.stream.iter().enumerate().any(|(j, op)| match op {
                SOp::Load { .. } | SOp::BinLoads { .. } => false,
                SOp::Bin { a, b, .. } => j != k && (reads(a, r) || reads(b, r)),
                SOp::Un { a, .. } => reads(a, r),
                SOp::Fma { a, b, c, .. } => reads(a, r) || reads(b, r) || reads(c, r),
            }) || rec_reads(r)
        };
        let load_of = |r: u32| {
            scratch.stream.iter().position(
                |op| matches!(op, SOp::Load { slot, .. } if *slot == r),
            )
        };
        let (Some(la), Some(lb)) = (load_of(x), load_of(y)) else {
            continue;
        };
        if other_consumer(x) || (y != x && other_consumer(y)) {
            continue;
        }
        let SOp::Load {
            base: a_base,
            delta: a_delta,
            tile: a_tile,
            acc: a_acc,
            ..
        } = scratch.stream[la]
        else {
            unreachable!()
        };
        let SOp::Load {
            base: b_base,
            delta: b_delta,
            tile: b_tile,
            acc: b_acc,
            ..
        } = scratch.stream[lb]
        else {
            unreachable!()
        };
        scratch.stream[k] = SOp::BinLoads {
            op,
            slot,
            a_base,
            a_delta,
            a_tile,
            a_acc,
            b_base,
            b_delta,
            b_tile,
            b_acc,
        };
        // Drop the now-unconsumed loads (their slots stay allocated,
        // simply unwritten). Remove the higher index first.
        let (hi, lo) = (la.max(lb), la.min(lb));
        scratch.stream.remove(hi);
        if hi != lo {
            scratch.stream.remove(lo);
        }
        return fuse_stream_loads(scratch); // indices shifted; rescan
    }
}

/// Whether the cached plan in `scratch` is valid for this run: same
/// spec, same length, same per-access deltas, allocations, and
/// inter-access base offsets (⇒ identical hazard classification), and
/// unchanged invariant operand values.
fn plan_cache_hit(spec: &RunSpec, n: usize, fregs: &[f64], scratch: &RunScratch) -> bool {
    if scratch.cached_spec != spec as *const RunSpec as usize
        || scratch.cached_n != n
        || scratch.sig.len() != scratch.acc.len()
    {
        return false;
    }
    let base0 = scratch.acc[0].base;
    if !scratch
        .acc
        .iter()
        .zip(&scratch.sig)
        .all(|(a, s)| (a.delta, a.tile.id(), a.base - base0) == *s)
    {
        return false;
    }
    scratch
        .inv_vals
        .iter()
        .all(|&(reg, v)| fregs[reg as usize].to_bits() == v.to_bits())
}

/// Rewrites the flat base addresses of the cached plan to this run's
/// resolved accesses (everything else — classification, slots, deltas,
/// tiles, constants — is unchanged by construction on a cache hit).
fn patch_bases(scratch: &mut RunScratch) {
    let acc = &scratch.acc;
    for op in &mut scratch.stream {
        match op {
            SOp::Load { base, acc: a, .. } => *base = acc[*a as usize].base,
            SOp::BinLoads {
                a_base,
                a_acc,
                b_base,
                b_acc,
                ..
            } => {
                *a_base = acc[*a_acc as usize].base;
                *b_base = acc[*b_acc as usize].base;
            }
            _ => {}
        }
    }
    for op in scratch.rec_first.iter_mut().chain(&mut scratch.rec_steady) {
        match op {
            ROp::Load { base, acc: a, .. }
            | ROp::Store { base, acc: a, .. }
            | ROp::ChainStore { base, acc: a, .. } => {
                *base = acc[*a as usize].base;
            }
            _ => {}
        }
    }
}

#[inline]
fn fref_streamed(r: FRef, streamed: &[bool]) -> bool {
    match r {
        FRef::Inv(_) => true,
        FRef::Op(j) => streamed[j as usize],
    }
}

#[inline]
fn ssrc(r: FRef, fregs: &[f64], slot_of: &[u32]) -> SSrc {
    match r {
        FRef::Inv(reg) => SSrc::Const(fregs[reg as usize]),
        FRef::Op(j) => SSrc::Slot(slot_of[j as usize]),
    }
}

/// Resolves a recurrent operand to its arena offset, materializing
/// run-invariant values into the constants tail.
#[inline]
#[allow(clippy::too_many_arguments)]
fn rref(
    r: FRef,
    fregs: &[f64],
    streamed: &[bool],
    slot_of: &[u32],
    vals_base: usize,
    arena: &mut [f64],
    next_const: &mut usize,
) -> RRef {
    match r {
        FRef::Inv(reg) => {
            let off = *next_const;
            *next_const += 1;
            arena[off] = fregs[reg as usize];
            RRef {
                off: off as u32,
                step: 0,
            }
        }
        FRef::Op(j) if streamed[j as usize] => RRef {
            off: slot_of[j as usize] * CHUNK as u32,
            step: 1,
        },
        FRef::Op(j) => RRef {
            off: (vals_base + j as usize) as u32,
            step: 0,
        },
    }
}

/// Builds the steady-state recurrent tape from `rec_first`: a `Load`
/// whose address sequence trails this run's single store on the same
/// allocation by exactly one iteration (k = −1) re-reads the value the
/// arena already holds, so it is forwarded — its consumers are
/// repointed at the store's source when every consumer reads it before
/// the source is recomputed, or it degrades to a `Carry` copy. The
/// first iteration always uses the faithful tape (there is no previous
/// iteration to forward from).
fn build_steady(scratch: &mut RunScratch, vals_base: usize) {
    // dst offset of a forwardable load → the store's source offset.
    let mut fwd: Vec<(u32, u32)> = Vec::new();
    for op in &scratch.rec_first {
        let ROp::Load { dst, acc, .. } = op else {
            continue;
        };
        let la = scratch.acc[*acc as usize];
        let mut stores = scratch
            .acc
            .iter()
            .filter(|a| a.store && a.tile.id() == la.tile.id());
        let (Some(sa), None) = (stores.next(), stores.next()) else {
            continue; // forwarding needs a unique writer of the tile
        };
        if la.delta == 0 || sa.delta != la.delta || la.base != sa.base - sa.delta {
            continue;
        }
        if la.pos >= sa.pos {
            // The store of iteration t runs before this load; the arena
            // would already hold iteration t's value, not t − 1's.
            continue;
        }
        let src = scratch.rec_first.iter().find_map(|op| match op {
            ROp::Store { src, acc, .. } if scratch.acc[*acc as usize].pos == sa.pos => Some(*src),
            _ => None,
        });
        let Some(src) = src else { continue };
        // The forwarded value must still be live (not yet recomputed
        // this iteration) when the load's position is reached: its
        // offset must belong to an op later in body order, or to the
        // constants tail.
        if src.step != 0 || (src.off as usize) <= vals_base + la.pos as usize {
            continue;
        }
        fwd.push((*dst, src.off));
    }
    let fwd_of = |off: u32| fwd.iter().find(|(d, _)| *d == off).map(|&(_, s)| s);
    // A consumer at body position p may read the store's source
    // directly only if that source is produced after p; otherwise the
    // load degrades to a Carry copy at its original position.
    let live_at = |src: u32, pos: usize| src as usize > vals_base + pos;
    let mut steady: Vec<ROp> = Vec::new();
    for op in &scratch.rec_first {
        let mut op = op.clone();
        let patch = |r: &mut RRef, pos: usize| {
            if r.step == 0 {
                if let Some(src) = fwd_of(r.off) {
                    if live_at(src, pos) {
                        r.off = src;
                    }
                }
            }
        };
        match &mut op {
            ROp::Load { dst, .. } => {
                if let Some(src) = fwd_of(*dst) {
                    let dst = *dst;
                    // Keep a Carry if any consumer still reads vals[dst]
                    // (the redirect below was invalid for it).
                    let all_redirected = scratch.rec_first.iter().all(|c| {
                        let (refs, pos): (Vec<RRef>, usize) = match c {
                            ROp::Bin { a, b, dst, .. } => {
                                (vec![*a, *b], *dst as usize - vals_base)
                            }
                            ROp::Un { a, dst, .. } => (vec![*a], *dst as usize - vals_base),
                            ROp::Fma { a, b, c, dst } => {
                                (vec![*a, *b, *c], *dst as usize - vals_base)
                            }
                            ROp::Store { src, acc, .. } => {
                                (vec![*src], scratch.acc[*acc as usize].pos as usize)
                            }
                            ROp::Load { .. } | ROp::Carry { .. } => (vec![], 0),
                            ROp::Chain { .. } | ROp::ChainStore { .. } => {
                                unreachable!("fusion runs after build_steady")
                            }
                        };
                        refs.iter()
                            .filter(|r| r.step == 0 && r.off == dst)
                            .all(|_| live_at(src, pos))
                    });
                    if all_redirected {
                        continue; // load disappears from the steady tape
                    }
                    steady.push(ROp::Carry { dst, src });
                    continue;
                }
            }
            ROp::Bin { a, b, dst, .. } => {
                let pos = *dst as usize - vals_base;
                patch(a, pos);
                patch(b, pos);
            }
            ROp::Un { a, dst, .. } => {
                let pos = *dst as usize - vals_base;
                patch(a, pos);
            }
            ROp::Fma { a, b, c, dst } => {
                let pos = *dst as usize - vals_base;
                patch(a, pos);
                patch(b, pos);
                patch(c, pos);
            }
            ROp::Store { src, acc, .. } => {
                let pos = scratch.acc[*acc as usize].pos as usize;
                patch(src, pos);
            }
            ROp::Carry { .. } => {}
            ROp::Chain { .. } | ROp::ChainStore { .. } => {
                unreachable!("fusion runs after build_steady")
            }
        }
        steady.push(op);
    }
    fuse_chains(&mut steady);
    scratch.rec_steady = steady;
}

/// Fuses maximal runs of consecutive `Bin` ops where each op's result
/// is read exactly once, by the immediately following op, into
/// [`ROp::Chain`] superinstructions (Ertl & Gregg-style: amortize
/// dispatch over the whole dependent sequence). Intermediate arena
/// writes disappear with their only reader.
fn fuse_chains(steady: &mut Vec<ROp>) {
    let mut reads: HashMap<u32, u32> = HashMap::new();
    let mut note = |r: &RRef| {
        if r.step == 0 {
            *reads.entry(r.off).or_insert(0) += 1;
        }
    };
    for op in steady.iter() {
        match op {
            ROp::Bin { a, b, .. } => {
                note(a);
                note(b);
            }
            ROp::Un { a, .. } => note(a),
            ROp::Fma { a, b, c, .. } => {
                note(a);
                note(b);
                note(c);
            }
            ROp::Store { src, .. } => note(src),
            ROp::Carry { src, .. } => note(&RRef { off: *src, step: 0 }),
            ROp::Load { .. } => {}
            ROp::Chain { .. } | ROp::ChainStore { .. } => unreachable!("fusion runs once"),
        }
    }
    let single_use = |off: u32| reads.get(&off).copied() == Some(1);
    let mut out: Vec<ROp> = Vec::with_capacity(steady.len());
    let mut i = 0;
    while i < steady.len() {
        let ROp::Bin { op, dst, a, b } = steady[i] else {
            out.push(steady[i].clone());
            i += 1;
            continue;
        };
        let mut links = vec![ChainLink {
            op,
            other: b,
            acc_rhs: false,
        }];
        let mut cur = dst;
        let mut j = i;
        while let Some(ROp::Bin {
            op: nop,
            dst: ndst,
            a: na,
            b: nb,
        }) = steady.get(j + 1)
        {
            if !single_use(cur) {
                break;
            }
            if na.step == 0 && na.off == cur {
                links.push(ChainLink {
                    op: *nop,
                    other: *nb,
                    acc_rhs: false,
                });
            } else if nb.step == 0 && nb.off == cur {
                links.push(ChainLink {
                    op: *nop,
                    other: *na,
                    acc_rhs: true,
                });
            } else {
                break;
            }
            cur = *ndst;
            j += 1;
        }
        if j > i {
            out.push(ROp::Chain {
                dst: cur,
                init: a,
                links: links.into(),
            });
            i = j + 1;
        } else {
            out.push(steady[i].clone());
            i += 1;
        }
    }
    // Second pass: a store that immediately follows the chain producing
    // its source value rides along in the chain's dispatch.
    let mut merged: Vec<ROp> = Vec::with_capacity(out.len());
    let mut it = out.into_iter().peekable();
    while let Some(op) = it.next() {
        if let ROp::Chain { dst, init, links } = &op {
            if let Some(ROp::Store {
                src,
                base,
                delta,
                tile,
                acc,
            }) = it.peek()
            {
                if src.step == 0 && src.off == *dst {
                    merged.push(ROp::ChainStore {
                        dst: *dst,
                        init: *init,
                        links: links.clone(),
                        base: *base,
                        delta: *delta,
                        tile: *tile,
                        acc: *acc,
                    });
                    it.next();
                    continue;
                }
            }
        }
        merged.push(op);
    }
    *steady = merged;
}

/// Whether streaming `load` (reading its whole address sequence from
/// pre-run memory) could observe a different value than the original
/// point-by-point interleaving with `store`.
///
/// With equal per-iteration deltas `d`, the store of iteration `t'`
/// hits the load address of iteration `t` exactly when
/// `t' = t + (Lbase − Sbase)/d`; under the original order the load of
/// iteration `t` sees the store of iteration `t'` iff `t' < t`, or
/// `t' = t` when the store precedes the load in the body. Unequal
/// deltas over overlapping ranges are conservatively hazardous.
fn hazard(load: &AccessPlan, store: &AccessPlan, n: usize) -> bool {
    debug_assert!(store.store && !load.store);
    if load.tile.id() != store.tile.id() {
        return false;
    }
    let last = (n - 1) as isize;
    let range = |a: &AccessPlan| {
        let end = a.base + last * a.delta;
        (a.base.min(end), a.base.max(end))
    };
    let (llo, lhi) = range(load);
    let (slo, shi) = range(store);
    if lhi < slo || shi < llo {
        return false;
    }
    if load.delta != store.delta {
        return true;
    }
    let d = load.delta;
    if d == 0 {
        // Same single address for the whole run: the load would observe
        // every store after the first iteration.
        return true;
    }
    let diff = load.base - store.base;
    if diff % d != 0 {
        return false;
    }
    let k = diff / d;
    let reaches_past = k >= -last && k <= -1;
    let same_iteration = k == 0 && store.pos < load.pos;
    reaches_past || same_iteration
}

/// Executes the streamed plan for in-chunk iterations `[t0, t0 + m)`:
/// one operation at a time over the whole chunk, into/over stripe rows
/// of constant stride [`CHUNK`] — the loops LLVM autovectorizes.
pub(crate) fn exec_streamed(stream: &[SOp], stripe: &mut [f64], t0: usize, m: usize) {
    for op in stream {
        match op {
            SOp::Load {
                slot,
                base,
                delta,
                tile,
                ..
            } => {
                let start = base + t0 as isize * delta;
                let row = *slot as usize * CHUNK;
                if *delta == 1 {
                    let s = start as usize;
                    for (l, o) in stripe[row..row + m].iter_mut().enumerate() {
                        *o = tile.get(s + l);
                    }
                } else {
                    let d = *delta;
                    for (l, o) in stripe[row..row + m].iter_mut().enumerate() {
                        *o = tile.get((start + l as isize * d) as usize);
                    }
                }
            }
            SOp::Bin { op, slot, a, b } => match op {
                FOp::Add => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Add.apply(x, y)),
                FOp::Sub => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Sub.apply(x, y)),
                FOp::Mul => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Mul.apply(x, y)),
                FOp::Div => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Div.apply(x, y)),
                FOp::Max => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Max.apply(x, y)),
                FOp::Min => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Min.apply(x, y)),
                FOp::Pow => bin_chunk(stripe, m, *slot, *a, *b, |x, y| FOp::Pow.apply(x, y)),
            },
            SOp::Un { op, slot, a } => match op {
                FUn::Neg => un_chunk(stripe, m, *slot, *a, |x| FUn::Neg.apply(x)),
                FUn::Sqrt => un_chunk(stripe, m, *slot, *a, |x| FUn::Sqrt.apply(x)),
                FUn::Abs => un_chunk(stripe, m, *slot, *a, |x| FUn::Abs.apply(x)),
                FUn::Exp => un_chunk(stripe, m, *slot, *a, |x| FUn::Exp.apply(x)),
            },
            SOp::BinLoads {
                op,
                slot,
                a_base,
                a_delta,
                a_tile,
                b_base,
                b_delta,
                b_tile,
                ..
            } => {
                let sa = a_base + t0 as isize * a_delta;
                let sb = b_base + t0 as isize * b_delta;
                let row = *slot as usize * CHUNK;
                let out = &mut stripe[row..row + m];
                macro_rules! loop_for {
                    ($f:expr) => {
                        if (*a_delta, *b_delta) == (1, 1) {
                            let (sa, sb) = (sa as usize, sb as usize);
                            for (l, o) in out.iter_mut().enumerate() {
                                *o = $f(a_tile.get(sa + l), b_tile.get(sb + l));
                            }
                        } else {
                            let (da, db) = (*a_delta, *b_delta);
                            for (l, o) in out.iter_mut().enumerate() {
                                let l = l as isize;
                                *o = $f(
                                    a_tile.get((sa + l * da) as usize),
                                    b_tile.get((sb + l * db) as usize),
                                );
                            }
                        }
                    };
                }
                match op {
                    FOp::Add => loop_for!(|x, y| FOp::Add.apply(x, y)),
                    FOp::Sub => loop_for!(|x, y| FOp::Sub.apply(x, y)),
                    FOp::Mul => loop_for!(|x, y| FOp::Mul.apply(x, y)),
                    FOp::Div => loop_for!(|x, y| FOp::Div.apply(x, y)),
                    FOp::Max => loop_for!(|x, y| FOp::Max.apply(x, y)),
                    FOp::Min => loop_for!(|x, y| FOp::Min.apply(x, y)),
                    FOp::Pow => loop_for!(|x, y| FOp::Pow.apply(x, y)),
                }
            }
            SOp::Fma { slot, a, b, c } => {
                let d0 = *slot as usize * CHUNK;
                for l in 0..m {
                    let v = sread(stripe, *a, l).mul_add(sread(stripe, *b, l), sread(stripe, *c, l));
                    stripe[d0 + l] = v;
                }
            }
        }
    }
}

#[inline]
fn sread(stripe: &[f64], s: SSrc, l: usize) -> f64 {
    match s {
        SSrc::Slot(x) => stripe[x as usize * CHUNK + l],
        SSrc::Const(c) => c,
    }
}

/// Splits the stripe into (earlier rows, destination row). Stripe slots
/// are assigned in body order, so every source slot of an op is
/// strictly below its destination slot — the split is always valid and
/// gives the chunk loops aliasing-free slices with no per-element
/// bounds checks (which is what lets LLVM vectorize them).
#[inline]
fn dst_row(stripe: &mut [f64], dst: u32, m: usize) -> (&[f64], &mut [f64]) {
    let (src, rest) = stripe.split_at_mut(dst as usize * CHUNK);
    (src, &mut rest[..m])
}

#[inline]
fn bin_chunk<F: Fn(f64, f64) -> f64>(
    stripe: &mut [f64],
    m: usize,
    dst: u32,
    a: SSrc,
    b: SSrc,
    f: F,
) {
    let (src, out) = dst_row(stripe, dst, m);
    match (a, b) {
        (SSrc::Slot(x), SSrc::Slot(y)) => {
            let xs = &src[x as usize * CHUNK..x as usize * CHUNK + m];
            let ys = &src[y as usize * CHUNK..y as usize * CHUNK + m];
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = f(x, y);
            }
        }
        (SSrc::Slot(x), SSrc::Const(c)) => {
            let xs = &src[x as usize * CHUNK..x as usize * CHUNK + m];
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = f(x, c);
            }
        }
        (SSrc::Const(c), SSrc::Slot(y)) => {
            let ys = &src[y as usize * CHUNK..y as usize * CHUNK + m];
            for (o, &y) in out.iter_mut().zip(ys) {
                *o = f(c, y);
            }
        }
        (SSrc::Const(c1), SSrc::Const(c2)) => out.fill(f(c1, c2)),
    }
}

#[inline]
fn un_chunk<F: Fn(f64) -> f64>(stripe: &mut [f64], m: usize, dst: u32, a: SSrc, f: F) {
    let (src, out) = dst_row(stripe, dst, m);
    match a {
        SSrc::Slot(x) => {
            let xs = &src[x as usize * CHUNK..x as usize * CHUNK + m];
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = f(x);
            }
        }
        SSrc::Const(c) => out.fill(f(c)),
    }
}

/// Executes the recurrent tail point by point for in-chunk iterations
/// `[t0, t0 + m)`, in original body order — this *is* the sequential
/// schedule, restricted to the ops that carry the loop dependence. The
/// run's very first iteration uses the faithful `first` tape; all
/// others use the forwarded `steady` tape (see [`build_steady`]).
pub(crate) fn exec_recurrent(
    first: &[ROp],
    steady: &[ROp],
    arena: &mut [f64],
    t0: usize,
    m: usize,
) {
    let mut l0 = 0;
    if t0 == 0 && m > 0 {
        exec_point(first, arena, 0, 0);
        l0 = 1;
    }
    // The dominant steady shape after forwarding and fusion is a single
    // fused chain+store; give it a loop that keeps the carried value in
    // a register instead of bouncing it through the arena.
    if let [ROp::ChainStore {
        dst,
        init,
        links,
        base,
        delta,
        tile,
        ..
    }] = steady
    {
        if chain_store_loop(arena, *dst, *init, links, *base, *delta, *tile, t0, l0, m) {
            return;
        }
    }
    for l in l0..m {
        exec_point(steady, arena, (t0 + l) as isize, l);
    }
}

#[inline]
fn exec_point(ops: &[ROp], arena: &mut [f64], t: isize, l: usize) {
    {
        for op in ops {
            match op {
                ROp::Load {
                    dst,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    arena[*dst as usize] = tile.get((base + t * delta) as usize);
                }
                ROp::Carry { dst, src } => arena[*dst as usize] = arena[*src as usize],
                ROp::Store {
                    src,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    let v = aread(arena, *src, l);
                    let addr = (base + t * delta) as usize;
                    #[cfg(debug_assertions)]
                    crate::buffer::overlap::note_store_raw(tile.id(), addr, 1);
                    tile.set(addr, v);
                }
                ROp::Bin { op, dst, a, b } => {
                    arena[*dst as usize] = op.apply(aread(arena, *a, l), aread(arena, *b, l));
                }
                ROp::Un { op, dst, a } => {
                    arena[*dst as usize] = op.apply(aread(arena, *a, l));
                }
                ROp::Fma { dst, a, b, c } => {
                    arena[*dst as usize] =
                        aread(arena, *a, l).mul_add(aread(arena, *b, l), aread(arena, *c, l));
                }
                ROp::Chain { dst, init, links } => {
                    arena[*dst as usize] = chain_eval(arena, *init, links, l);
                }
                ROp::ChainStore {
                    dst,
                    init,
                    links,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    let v = chain_eval(arena, *init, links, l);
                    arena[*dst as usize] = v;
                    let addr = (base + t * delta) as usize;
                    #[cfg(debug_assertions)]
                    crate::buffer::overlap::note_store_raw(tile.id(), addr, 1);
                    tile.set(addr, v);
                }
            }
        }
    }
}

/// How a chain operand is fetched inside [`chain_store_loop`]: the
/// register-carried recurrence value, a hoisted loop-invariant, or a
/// stripe row indexed by the in-chunk position.
#[derive(Clone, Copy)]
enum COperand {
    Carry,
    Inv(f64),
    Row(u32),
}

const CHAIN_MAX: usize = 16;

#[inline]
fn coperand(r: RRef, dst: u32, arena: &[f64]) -> COperand {
    if r.step != 0 {
        COperand::Row(r.off)
    } else if r.off == dst {
        COperand::Carry
    } else {
        COperand::Inv(arena[r.off as usize])
    }
}

/// Specialized loop for a steady tape that is a single fused
/// chain+store. The recurrence value (the step-0 operand aliasing the
/// chain's own destination) lives in a register across iterations;
/// other step-0 operands are loop-invariant and read once. Applies the
/// exact same ops in the same order and operand sides as the generic
/// path, so results stay bit-identical. Returns false (nothing done)
/// when the chain is too long for the operand scratch table.
#[allow(clippy::too_many_arguments)]
fn chain_store_loop(
    arena: &mut [f64],
    dst: u32,
    init: RRef,
    links: &[ChainLink],
    base: isize,
    delta: isize,
    tile: TileView,
    t0: usize,
    l0: usize,
    m: usize,
) -> bool {
    if links.len() > CHAIN_MAX || l0 >= m {
        return l0 >= m;
    }
    let initk = coperand(init, dst, arena);
    let mut ops = [(FOp::Add, false, COperand::Carry); CHAIN_MAX];
    for (o, lk) in ops.iter_mut().zip(links) {
        *o = (lk.op, lk.acc_rhs, coperand(lk.other, dst, arena));
    }
    let ops = &ops[..links.len()];
    // Entered with arena[dst] holding the previous iteration's value
    // (written by the `first` tape or the previous chunk).
    let mut carry = arena[dst as usize];
    let mut addr = base + (t0 + l0) as isize * delta;
    for l in l0..m {
        let fetch = |k: COperand| match k {
            COperand::Carry => carry,
            COperand::Inv(c) => c,
            COperand::Row(o) => arena[o as usize + l],
        };
        let mut acc = fetch(initk);
        for &(op, acc_rhs, k) in ops {
            let x = fetch(k);
            acc = if acc_rhs { op.apply(x, acc) } else { op.apply(acc, x) };
        }
        #[cfg(debug_assertions)]
        crate::buffer::overlap::note_store_raw(tile.id(), addr as usize, 1);
        tile.set(addr as usize, acc);
        carry = acc;
        addr += delta;
    }
    arena[dst as usize] = carry;
    true
}

#[inline]
fn chain_eval(arena: &[f64], init: RRef, links: &[ChainLink], l: usize) -> f64 {
    let mut acc = aread(arena, init, l);
    for lk in links {
        let x = aread(arena, lk.other, l);
        acc = if lk.acc_rhs {
            lk.op.apply(x, acc)
        } else {
            lk.op.apply(acc, x)
        };
    }
    acc
}

#[inline]
fn aread(arena: &[f64], r: RRef, l: usize) -> f64 {
    arena[r.off as usize + l * r.step as usize]
}

use std::collections::{HashMap, HashSet};

use crate::bytecode::{IOp, Instr, Tape};

/// Executes a probe program. Returns `false` on any condition the
/// generic body would report as an error (division by zero, unset
/// buffer); the caller then falls back so the error surfaces from the
/// generic loop with exact accounting.
pub(crate) fn run_probe(probe: &[ProbeOp], regs: &mut crate::bytecode::Regs) -> bool {
    for op in probe {
        match *op {
            ProbeOp::CF { dst, v } => regs.f[dst as usize] = v,
            ProbeOp::CI { dst, v } => regs.i[dst as usize] = v,
            ProbeOp::Mov { dst, src } => regs.i[dst as usize] = regs.i[src as usize],
            ProbeOp::S2F { dst, src } => regs.f[dst as usize] = regs.i[src as usize] as f64,
            ProbeOp::Dim { dst, buf, dim } => {
                let Some(b) = regs.b[buf as usize].as_ref() else {
                    return false;
                };
                regs.i[dst as usize] = b.dim(dim as usize) as i64;
            }
            ProbeOp::Bin { op, dst, a, b } => {
                let a = regs.i[a as usize];
                let b = regs.i[b as usize];
                regs.i[dst as usize] = match op {
                    IOp::Add => a + b,
                    IOp::Sub => a - b,
                    IOp::Mul => a * b,
                    IOp::FloorDiv | IOp::CeilDiv | IOp::Rem if b == 0 => return false,
                    IOp::FloorDiv => a.div_euclid(b),
                    IOp::CeilDiv => (a + b - 1).div_euclid(b),
                    IOp::Rem => a.rem_euclid(b),
                    IOp::Min => a.min(b),
                    IOp::Max => a.max(b),
                };
            }
        }
    }
    true
}

/// Recognizes a specializable innermost loop body and builds its
/// [`RunSpec`]. Declines — with a reason suitable for a
/// `runspec-decline` observability event — when the body uses anything
/// outside the straight-line stencil subset: nested control flow,
/// vector ops, comparisons/selects, allocation, view construction,
/// float-typed induction values, or index arithmetic that is not
/// affine in `iv`.
///
/// Affinity tracking: integer registers are *linear* (affine in `iv`)
/// or *invariant*. `iv` is linear; registers defined outside the body
/// are invariant (SSA + dominance); `addi`/`subi` preserve linearity;
/// `muli` of linear × invariant stays linear (linear × linear bails);
/// division/remainder/min/max of anything linear bails. Access index
/// registers may be either class — the probe resolves their values —
/// but linearity is what justifies probing only two iterations and
/// bounds-checking only the run endpoints.
pub(crate) fn analyze(tape: &Tape, iv: u32) -> Result<RunSpec, &'static str> {
    if !tape.term.is_empty() {
        return Err("body yields loop-carried values");
    }
    // Classify nested control flow up front, whatever else the tape
    // holds: an outer tile loop clamps its bounds (min/max on the
    // induction value) *before* its nested `For` appears on the tape,
    // and blaming the clamp would misname every outer loop of a nest
    // as a non-affine-arithmetic decline.
    if tape.code.iter().any(|i| {
        matches!(
            i,
            Instr::For { .. } | Instr::If { .. } | Instr::ParallelLoop { .. } | Instr::Wavefronts { .. }
        )
    }) {
        return Err("nested control flow");
    }
    let mut probe_code: Vec<ProbeOp> = Vec::new();
    let mut probe_iv_code: Vec<ProbeOp> = Vec::new();
    let mut lin: HashSet<u32> = HashSet::new();
    lin.insert(iv);
    // f-register → producing op position; absent means run-invariant.
    let mut fdef: HashMap<u32, u16> = HashMap::new();
    let fref = |r: u32, fdef: &HashMap<u32, u16>| -> FRef {
        fdef.get(&r).map_or(FRef::Inv(r), |&j| FRef::Op(j))
    };
    let mut ops: Vec<RunOp> = Vec::new();
    let mut n_acc: u16 = 0;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut flops = 0u64;
    let mut index_ops = 0u64;

    for instr in &tape.code {
        if ops.len() >= u16::MAX as usize || n_acc == u16::MAX {
            return Err("op count exceeds the u16 stream budget");
        }
        match instr {
            Instr::ConstF { dst, v } => probe_code.push(ProbeOp::CF { dst: *dst, v: *v }),
            Instr::ConstI { dst, v } => probe_code.push(ProbeOp::CI { dst: *dst, v: *v }),
            Instr::Dim { dst, buf, dim } => probe_code.push(ProbeOp::Dim {
                dst: *dst,
                buf: *buf,
                dim: *dim,
            }),
            Instr::MoveI { dst, src } => {
                let p = ProbeOp::Mov {
                    dst: *dst,
                    src: *src,
                };
                if lin.contains(src) {
                    lin.insert(*dst);
                    probe_iv_code.push(p);
                }
                probe_code.push(p);
            }
            Instr::SiToFp { dst, src } => {
                if lin.contains(src) {
                    // A float that varies per point without going through
                    // memory — outside the stencil subset.
                    return Err("per-point int-to-float conversion");
                }
                probe_code.push(ProbeOp::S2F {
                    dst: *dst,
                    src: *src,
                });
            }
            Instr::BinI { op, dst, a, b } => {
                index_ops += 1;
                let la = lin.contains(a);
                let lb = lin.contains(b);
                let dst_linear = match op {
                    IOp::Add | IOp::Sub => la || lb,
                    IOp::Mul => {
                        if la && lb {
                            return Err("index arithmetic quadratic in the induction value");
                        }
                        la || lb
                    }
                    IOp::FloorDiv | IOp::CeilDiv | IOp::Rem | IOp::Min | IOp::Max => {
                        if la || lb {
                            return Err("non-affine index arithmetic on the induction value");
                        }
                        false
                    }
                };
                let p = ProbeOp::Bin {
                    op: *op,
                    dst: *dst,
                    a: *a,
                    b: *b,
                };
                if dst_linear {
                    lin.insert(*dst);
                    probe_iv_code.push(p);
                }
                probe_code.push(p);
            }
            Instr::BinF { op, dst, a, b } => {
                flops += 1;
                let rop = RunOp::Bin {
                    op: *op,
                    a: fref(*a, &fdef),
                    b: fref(*b, &fdef),
                };
                fdef.insert(*dst, ops.len() as u16);
                ops.push(rop);
            }
            Instr::UnF { op, dst, a } => {
                flops += 1;
                let rop = RunOp::Un {
                    op: *op,
                    a: fref(*a, &fdef),
                };
                fdef.insert(*dst, ops.len() as u16);
                ops.push(rop);
            }
            Instr::FmaF { dst, a, b, c } => {
                flops += 1;
                let rop = RunOp::Fma {
                    a: fref(*a, &fdef),
                    b: fref(*b, &fdef),
                    c: fref(*c, &fdef),
                };
                fdef.insert(*dst, ops.len() as u16);
                ops.push(rop);
            }
            Instr::Load { dst, buf, idx } => {
                loads += 1;
                let rop = RunOp::Load {
                    buf: *buf,
                    idx: idx.clone(),
                    acc: n_acc,
                };
                n_acc += 1;
                fdef.insert(*dst, ops.len() as u16);
                ops.push(rop);
            }
            Instr::Store { src, buf, idx } => {
                stores += 1;
                ops.push(RunOp::Store {
                    buf: *buf,
                    idx: idx.clone(),
                    src: fref(*src, &fdef),
                    acc: n_acc,
                });
                n_acc += 1;
            }
            // Outside the straight-line scalar subset. The class matters
            // for diagnostics: vector-shaped bodies are the ones worth
            // flagging loudly, since the whole point of specialization
            // is to beat dispatch on exactly those dense inner loops.
            Instr::ConstV { .. }
            | Instr::BinV { .. }
            | Instr::UnV { .. }
            | Instr::FmaV { .. }
            | Instr::SelV { .. }
            | Instr::VLoad { .. }
            | Instr::VStore { .. }
            | Instr::VExtract { .. }
            | Instr::VBroadcast { .. } => return Err("vector ops in body"),
            Instr::For { .. }
            | Instr::If { .. }
            | Instr::ParallelLoop { .. }
            | Instr::Wavefronts { .. } => return Err("nested control flow"),
            Instr::CmpI { .. } | Instr::CmpF { .. } | Instr::SelF { .. } | Instr::SelI { .. } => {
                return Err("compare/select in body")
            }
            Instr::Call { .. } => return Err("call in body"),
            Instr::Alloc { .. }
            | Instr::Subview { .. }
            | Instr::ShiftView { .. }
            | Instr::CopyBuf { .. }
            | Instr::GetParallelBlocks { .. } => {
                return Err("allocation or view construction in body")
            }
        }
    }
    if stores == 0 {
        return Err("no stores in body");
    }
    let idx_regs: Vec<u32> = ops
        .iter()
        .flat_map(|op| match op {
            RunOp::Load { idx, .. } | RunOp::Store { idx, .. } => idx.iter().copied(),
            _ => [].iter().copied(),
        })
        .collect();
    Ok(RunSpec {
        probe: probe_code.into(),
        probe_iv: probe_iv_code.into(),
        ops: ops.into(),
        idx_regs: idx_regs.into(),
        loads_per_iter: loads,
        stores_per_iter: stores,
        flops_per_iter: flops,
        index_ops_per_iter: index_ops,
    })
}
