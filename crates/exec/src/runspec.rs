//! Run specialization: fused inner-loop macro-ops (DESIGN.md §4f).
//!
//! The bytecode engine's generic `Instr::For` pays per-point, per-instr
//! dispatch plus a bounds check and an atomic round-trip for every load
//! and store — ~100 ns/point on the 5-point Gauss-Seidel where a
//! hand-written loop runs in single-digit nanoseconds. This module
//! closes that gap with the classic superinstruction move (Ertl &
//! Gregg) shaped by the paper's §2.4 *partial vectorization*: process a
//! whole contiguous innermost-dimension run of points in **one**
//! dispatch.
//!
//! The pipeline has a compile-time half and a run-time half:
//!
//! * **[`analyze`]** (tape-compile time) recognizes a straight-line
//!   stencil point body — integer index arithmetic affine in the
//!   induction variable, scalar loads/stores, pure float ops — and
//!   produces a [`RunSpec`]: the body's accesses and float ops in
//!   order, plus a *probe tape* holding the body's integer/constant
//!   subset. Anything else (nested control flow, vector ops, divisions
//!   of the induction variable, …) simply stays on the generic path.
//! * **Planning** (each time the loop executes) runs the probe tape at
//!   the first two iterations to resolve every access to
//!   `base + t·delta` flat-address form, bounds-checks both run
//!   endpoints through the checked [`BufferView`] path (indices are
//!   affine in `t`, so the endpoints bound every iteration), and
//!   classifies each operation:
//!   - a load is **streamable** when no store of the body can write a
//!     location the load would have observed differently under the
//!     original point-by-point order (exact arithmetic on the
//!     base/delta pairs; any imprecision falls back to *recurrent*);
//!   - a float op is streamable when all its operands are;
//!   - stores (and everything downstream of a loop-carried load, e.g.
//!     the Gauss-Seidel west neighbour) are **recurrent**.
//! * **Execution** then runs the streamed ops one *operation at a time*
//!   over a chunk of iterations — flat `f64` stripe buffers indexed by
//!   a compile-time-constant chunk stride, exactly the loops LLVM
//!   autovectorizes — and finishes each point with the short recurrent
//!   tail in original body order. Because streamed values are
//!   bit-identical to what the sequential order would have produced
//!   (that is what the hazard analysis guarantees) and the recurrent
//!   tail *is* the sequential order, results match the interpreter
//!   bit-for-bit.
//!
//! Memory is accessed through [`TileView`] — raw non-atomic words,
//! justified by Eq. (3) schedule disjointness and policed by the
//! debug-mode [`crate::buffer::overlap`] checker.
//!
//! [`BufferView`]: crate::buffer::BufferView

use crate::buffer::TileView;
use crate::bytecode::{FOp, FUn};
use instencil_obs::trace::{self, TraceKind};

/// Iteration-count threshold below which a run stays on the generic
/// loop (probing two iterations plus planning doesn't pay for itself).
pub(crate) const MIN_RUN: usize = 4;

/// Iterations processed per streamed chunk. Also the compile-time
/// stride between stripe rows, so streamed loops index with a constant
/// multiplier. 256 iterations × one `f64` stripe per streamed op keeps
/// the working set inside L1/L2 for realistic bodies.
pub(crate) const CHUNK: usize = 256;

/// A float operand of a run body operation, resolved at analysis time.
/// Operands of *wide* ops (lanes > 1) denote whole lane groups; scalar
/// consumers address individual lanes through [`FRef::Lane`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum FRef {
    /// A float register whose value is invariant across the run (outer
    /// definition, or produced once by the probe tape's constants).
    Inv(u32),
    /// Run-invariant value(s) in the vector register file starting at
    /// this v-slot: an in-body `ConstV` (materialized by the probe) or a
    /// vector defined outside the body. Width comes from the consumer.
    VInv(u32),
    /// The value produced by `ops[i]` of the same iteration (all lanes
    /// when `ops[i]` is wide).
    Op(u16),
    /// One lane of the wide value produced by `ops[i]` (a `VExtract`,
    /// folded away at analysis time).
    Lane(u16, u16),
}

/// One operation of the specialized run body, in original body order.
/// `lanes == 1` is the scalar case; `lanes > 1` ops process a whole
/// vector-IR lane group per iteration ("wide" ops, §2.4 partial
/// vectorization).
#[derive(Clone, Debug)]
pub(crate) enum RunOp {
    /// Load; `acc` indexes the first of `lanes` consecutive per-run
    /// access plans (lane `l` reads one element further along the
    /// innermost dimension).
    Load {
        buf: u32,
        idx: Box<[u32]>,
        acc: u16,
        lanes: u16,
    },
    /// Store of `src` (all lanes of it when wide).
    Store {
        buf: u32,
        idx: Box<[u32]>,
        src: FRef,
        acc: u16,
        lanes: u16,
    },
    Bin {
        op: FOp,
        a: FRef,
        b: FRef,
        lanes: u16,
    },
    Un {
        op: FUn,
        a: FRef,
        lanes: u16,
    },
    Fma {
        a: FRef,
        b: FRef,
        c: FRef,
        lanes: u16,
    },
    /// `VBroadcast`: replicates the scalar `a` across `lanes` lanes.
    Splat {
        a: FRef,
        lanes: u16,
    },
}

impl RunOp {
    pub(crate) fn lanes(&self) -> u16 {
        match self {
            RunOp::Load { lanes, .. }
            | RunOp::Store { lanes, .. }
            | RunOp::Bin { lanes, .. }
            | RunOp::Un { lanes, .. }
            | RunOp::Fma { lanes, .. }
            | RunOp::Splat { lanes, .. } => *lanes,
        }
    }
}

/// One pre-decoded instruction of a run's probe program — the body's
/// integer/constant subset (`const`s, affine index arithmetic,
/// `memref.dim`), flattened out of [`Instr`] form so executing it is a
/// dispatch over six small variants instead of the full tape
/// interpreter.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ProbeOp {
    CF { dst: u32, v: f64 },
    CI { dst: u32, v: i64 },
    /// In-body `ConstV`: fills `lanes` v-slots so plan-time [`FRef::VInv`]
    /// reads observe exactly what the generic body would have written.
    CV { off: u32, lanes: u32, v: f64 },
    Mov { dst: u32, src: u32 },
    S2F { dst: u32, src: u32 },
    Dim { dst: u32, buf: u32, dim: u32 },
    Bin { op: IOp, dst: u32, a: u32, b: u32 },
}

/// Compile-time description of a specializable innermost loop body,
/// attached to `Instr::For`.
#[derive(Clone, Debug)]
pub(crate) struct RunSpec {
    /// The body's integer/constant subset in body order, run once per
    /// loop execution (at `lb`) to resolve accesses; float constants
    /// land in their registers as a side effect.
    pub probe: Box<[ProbeOp]>,
    /// The iv-dependent subset of `probe`, re-evaluated at `lb + step`
    /// to obtain the per-iteration index deltas without re-running the
    /// run-invariant majority of the program.
    pub probe_iv: Box<[ProbeOp]>,
    /// Loads, stores and float ops in body order.
    pub ops: Box<[RunOp]>,
    /// Merged access table: what the per-run resolve loop walks. Lane-
    /// unrolled scalar accesses whose indices differ only by consecutive
    /// last-dimension constants (proved by affine value-numbering at
    /// analysis time) collapse into one wide entry, so a vf-lowered body
    /// pays per-run resolution, signature comparison, and base patching
    /// per *group*, like its scalar sibling — not per unrolled lane.
    pub accs: Box<[SpecAccess]>,
    /// Per-access-op `(table entry, lane)`: op `acc` touches
    /// `tab[entry].base + lane · tab[entry].lane_stride`.
    pub acc_map: Box<[(u16, u16)]>,
    /// Index registers of every *table entry* (lane-0 member, in table
    /// order), concatenated — lets the per-run index snapshots be one
    /// tight pass instead of a re-scan of `ops`.
    pub idx_regs: Box<[u32]>,
    /// Per-iteration dynamic-stat increments of the generic body, used
    /// to bulk-account [`crate::ExecStats`] identically to
    /// point-by-point execution. Vector counters count *instructions*
    /// (not lanes), matching the interpreter and the generic engine.
    pub loads_per_iter: u64,
    pub stores_per_iter: u64,
    pub flops_per_iter: u64,
    pub index_ops_per_iter: u64,
    pub vloads_per_iter: u64,
    pub vstores_per_iter: u64,
    pub vflops_per_iter: u64,
}

/// One entry of the merged access table: the lane-0 member's index
/// registers plus the total lane count the entry covers (a genuinely
/// wide access contributes its own width; a merged group of `g`
/// accesses of width `w` at consecutive last-dim offsets covers
/// `g · w`). Resolution bounds-checks the entry's corners, which bound
/// every member cell — the same accept/panic decision the per-op
/// resolves made.
#[derive(Clone, Debug)]
pub(crate) struct SpecAccess {
    pub buf: u32,
    pub idx: Box<[u32]>,
    pub lanes: u16,
    pub store: bool,
}

/// One access *op* of one run execution, resolved to flat-address form.
/// A wide access is one plan: lane `l` of iteration `t` touches
/// `base + l·lane_stride + t·delta` (hazard analysis expands the lanes
/// arithmetically instead of materializing per-lane plans — resolution
/// runs once per run per op, so plan count is what the fallback-free
/// hot path pays for).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessPlan {
    /// Flat address of lane 0 at iteration 0.
    pub base: isize,
    /// Flat-address step per iteration.
    pub delta: isize,
    /// Flat stride between adjacent lanes (0 for scalar accesses).
    pub lane_stride: isize,
    /// Lane count (1 for scalar accesses).
    pub lanes: u16,
    /// Raw storage handle.
    pub tile: TileView,
    /// Position of the access in `ops` (body order, for hazard
    /// direction).
    pub pos: u32,
    /// Whether this access is a store.
    pub store: bool,
}

/// Source operand of a streamed (op-at-a-time) operation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SSrc {
    /// Arena elements: iteration `t`, lane `l` reads `off + t·step + l`.
    /// Scalar stripe rows have `step == 1`; wide rows `step == lanes`;
    /// a single lane of a wide row is `off = row + lane` with the row's
    /// step (and `l == 0` at the scalar consumer). Wide consumers only
    /// ever see lane-aligned sources (`step == lanes`) or lane-constant
    /// cells (`step == 0`, `lanes` consecutive values), which is what
    /// makes the unified read formula correct for every combination.
    Row { off: u32, step: u32 },
    /// Run-invariant scalar, broadcast across iterations and lanes.
    Const(f64),
}

/// One streamed operation: writes the stripe row at element offset
/// `row` (`m·lanes` elements, lane-major within each iteration) for a
/// whole chunk.
#[derive(Clone, Debug)]
pub(crate) enum SOp {
    Load {
        row: u32,
        lanes: u16,
        /// Flat stride between adjacent lanes (innermost-dimension
        /// element stride of the tile; 1 for dense rows).
        lane_stride: isize,
        base: isize,
        delta: isize,
        tile: TileView,
        /// First access-plan index of the op's `lanes` consecutive
        /// plans, for base patching on plan-cache hits.
        acc: u16,
    },
    Bin {
        op: FOp,
        row: u32,
        lanes: u16,
        a: SSrc,
        b: SSrc,
    },
    Un {
        op: FUn,
        row: u32,
        lanes: u16,
        a: SSrc,
    },
    Fma {
        row: u32,
        lanes: u16,
        a: SSrc,
        b: SSrc,
        c: SSrc,
    },
    /// `VBroadcast`: fills each iteration's `lanes` row elements with
    /// the scalar source value of that iteration.
    Splat {
        row: u32,
        lanes: u16,
        a: SSrc,
    },
    /// A binary op whose two operands are load rows consumed by nothing
    /// else: the staging copies are skipped and both tiles are read
    /// directly in one fused pass (see [`fuse_stream_loads`]). Wide ops
    /// fuse only *dense* loads (`lane_stride == 1`, `delta == lanes`),
    /// so element `e = t·lanes + l` always reads `base + t0·delta + e·s`
    /// with `s = delta` when scalar and `s = 1` when wide.
    BinLoads {
        op: FOp,
        row: u32,
        lanes: u16,
        a_base: isize,
        a_delta: isize,
        a_tile: TileView,
        a_acc: u16,
        b_base: isize,
        b_delta: isize,
        b_tile: TileView,
        b_acc: u16,
    },
}

/// Source operand of a recurrent (point-at-a-time) operation: an arena
/// offset plus a per-iteration step — lane `l` of in-chunk iteration
/// `t` reads `off + t·step + l`. Scalar stripe rows step by 1, wide
/// rows by their lane count; recurrent values and materialized
/// constants are read at a fixed offset (step 0, wide consumers see
/// `lanes` consecutive cells). Resolving the operand kind at plan time
/// leaves no dispatch on the per-point path — each read is one indexed
/// load.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RRef {
    pub off: u32,
    pub step: u32,
}

/// One link of a fused [`ROp::Chain`]: applies `op` between the
/// running accumulator and `other`, with `acc_rhs` preserving which
/// side of the original (non-commutative) operation the accumulator
/// was on.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChainLink {
    pub op: FOp,
    pub other: RRef,
    pub acc_rhs: bool,
}

/// One recurrent operation, executed in body order for every point.
/// Value-producing ops write the arena at `dst` (the vals region;
/// `lanes` consecutive cells when wide).
#[derive(Clone, Debug)]
pub(crate) enum ROp {
    Load {
        dst: u32,
        lanes: u16,
        /// Flat stride between adjacent lanes.
        lane_stride: isize,
        base: isize,
        delta: isize,
        tile: TileView,
        /// First access-plan index of the op's `lanes` plans, for base
        /// patching on plan-cache hits.
        acc: u16,
    },
    /// Steady-state replacement for a `Load` that re-reads the value
    /// stored one iteration earlier by this run's own store (offset
    /// ratio k = −1 in `hazard` terms): the arena still holds that
    /// value, so the memory round-trip is a copy.
    Carry {
        dst: u32,
        src: u32,
    },
    Store {
        src: RRef,
        lanes: u16,
        /// Flat stride between adjacent lanes.
        lane_stride: isize,
        base: isize,
        delta: isize,
        tile: TileView,
        /// First access-plan index of the op's `lanes` plans, for base
        /// patching on plan-cache hits.
        acc: u16,
    },
    Bin {
        op: FOp,
        dst: u32,
        lanes: u16,
        a: RRef,
        b: RRef,
    },
    Un {
        op: FUn,
        dst: u32,
        lanes: u16,
        a: RRef,
    },
    Fma {
        dst: u32,
        lanes: u16,
        a: RRef,
        b: RRef,
        c: RRef,
    },
    /// `VBroadcast`: writes `lanes` consecutive vals cells from the
    /// scalar source.
    Splat {
        dst: u32,
        lanes: u16,
        a: RRef,
    },
    /// A fused run of consecutive `Bin` ops threading one accumulator
    /// (each intermediate result consumed only by the next op): the
    /// accumulator lives in a register for the whole sequence and only
    /// the final value is written back — one dispatch instead of one
    /// per op. Operand order and operation order are exactly those of
    /// the unfused ops, so the result is bit-identical.
    Chain {
        dst: u32,
        init: RRef,
        links: Box<[ChainLink]>,
    },
    /// A [`ROp::Chain`] whose final value is also the source of the
    /// immediately following store: the store rides along in the same
    /// dispatch. The value is still written to `dst` — the next
    /// iteration's forwarded operands read it there.
    ChainStore {
        dst: u32,
        init: RRef,
        links: Box<[ChainLink]>,
        base: isize,
        delta: isize,
        tile: TileView,
        /// Access-plan index, for base patching on plan-cache hits.
        acc: u16,
    },
    /// The vf-lowered serial chain: `w` [`ROp::ChainStore`]s forming one
    /// lane-unrolled recurrence — lane `k`'s chain consumes lane
    /// `k − 1`'s value (lane 0 consumes lane `w − 1`'s from the previous
    /// iteration). Fused so the carried value crosses lane boundaries in
    /// a register: one dispatch per chunk instead of `w` per iteration.
    /// Lane order, operation order, and operand sides are exactly those
    /// of the unfused tape, so results stay bit-identical.
    ChainStoreW {
        lanes: Box<[WLane]>,
        /// Arena cell holding the carried value between chunks (the
        /// last lane's `dst`; lane 0's carry operand reads it).
        carry_cell: u32,
    },
}

/// One lane of a [`ROp::ChainStoreW`]: a full chain-store, plus the
/// link position whose operand is the carried value (served from the
/// running register instead of the arena).
#[derive(Clone, Debug)]
pub(crate) struct WLane {
    pub dst: u32,
    pub init: RRef,
    pub links: Box<[ChainLink]>,
    pub carry_at: u16,
    pub base: isize,
    pub delta: isize,
    pub tile: TileView,
    /// Access-plan index, for base patching on plan-cache hits.
    pub acc: u16,
}

/// Reusable per-frame run state. Lives in the register file so repeated
/// runs (every tile row of every block) reuse the allocations; cloning
/// a frame for a wavefront worker hands out *empty* scratch instead of
/// copying plans that are only valid mid-run. The engine additionally
/// pools scratch across calls: the plan cache below re-validates by
/// spec address, run length, signature, and invariant values before any
/// cached state is trusted (and [`patch_bases`] refreshes every pointer
/// from the current frame), so a warm scratch from a previous call
/// turns the per-call cold plan build into a patch-only hit.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Resolved plans of the merged access table, in table order — the
    /// per-run artifact (`pos` holds the table index). Signature
    /// comparison and base patching run over these few entries.
    pub tab: Vec<AccessPlan>,
    /// Per-access-op copy of [`RunSpec::acc_map`], captured at plan
    /// build so cache-hit patching needs no spec access.
    pub acc_map: Vec<(u16, u16)>,
    /// Expanded per-op access plans, indexed by
    /// `RunOp::{Load,Store}::acc` — rebuilt from `tab` only on plan
    /// cache misses (classification, forwarding, and hazard analysis
    /// consume exactly what per-op resolution used to produce). Stale
    /// on cache hits: every hit-path consumer goes through `tab`.
    pub acc: Vec<AccessPlan>,
    /// Index values of the probe at iteration 0 / iteration 1.
    pub idx0: Vec<i64>,
    pub idx1: Vec<i64>,
    /// Streamed plan of the current run.
    pub stream: Vec<SOp>,
    /// Recurrent plan: `rec_first` is the faithful body tape (the
    /// forwarding analysis input — never executed); `rec_steady` is the
    /// executed tape, valid from t = 0 once `prelude` seeds the k = −1
    /// forward cells with their loads' pre-run memory values.
    pub rec_first: Vec<ROp>,
    pub rec_steady: Vec<ROp>,
    /// (cell, access-plan index) pairs: before the first chunk,
    /// `arena[cell] = tile[base]` materializes what the forwarded k = −1
    /// load would have read at t = 0.
    pub prelude: Vec<(u32, u16)>,
    /// Per-op streamed flag, stripe-row element offset, and vals-region
    /// element offset (rows are `lanes·CHUNK` elements wide, vals cells
    /// `lanes` wide, so both are prefix sums rather than plain indices).
    streamed: Vec<bool>,
    row_of: Vec<u32>,
    vals_of: Vec<u32>,
    /// Shared f64 arena: the streamed ops' stripe rows, then the
    /// per-op vals cells, then materialized constants. All recurrent
    /// operands resolve to offsets into this one slice.
    pub arena: Vec<f64>,
    /// Plan cache: address of the `RunSpec` the current `stream`/`rec`
    /// were built for (0 = none), the run length, the per-access
    /// signature `(delta, tile id, base − base₀)`, and the materialized
    /// invariant values (from the float and vector register files).
    /// When the signature of the next run matches, classification is
    /// provably identical and only the flat bases need patching — the
    /// common case for every row of every tile.
    cached_spec: usize,
    cached_n: usize,
    sig: Vec<(isize, usize, isize, isize)>,
    inv_vals: Vec<(u32, f64)>,
    inv_vvals: Vec<(u32, f64)>,
    /// Negative verdict cache: specs whose probe/resolution failed in
    /// this frame. The generic path is always a correct (just slower)
    /// fallback, so once a loop declines at run time it stops paying
    /// the probe + snapshot cost on every subsequent execution.
    pub declined: Vec<usize>,
}

impl Clone for RunScratch {
    fn clone(&self) -> Self {
        RunScratch::default()
    }
}

/// Classifies every op of `spec` as streamed or recurrent for a run of
/// `n` iterations and builds the execution plans into `scratch`
/// (`scratch.acc` must already hold the resolved access plans, one per
/// lane of each access). Run-invariant operands are materialized from
/// the float (`fregs`) and vector (`vregs`) register files.
pub(crate) fn build_plan(
    spec: &RunSpec,
    n: usize,
    fregs: &[f64],
    vregs: &[f64],
    scratch: &mut RunScratch,
) -> bool {
    let ops = &spec.ops;
    if plan_cache_hit(spec, n, fregs, vregs, scratch) {
        patch_bases(scratch);
        return true;
    }
    let t_miss = phase_timing::enabled().then(std::time::Instant::now);
    let t_compile = trace::begin();
    phase_timing::count_miss();
    // Expand the merged table into per-op access plans: classification,
    // forwarding, and hazard analysis below see exactly what per-op
    // resolution used to produce (the bases are the same integers —
    // lane-0 base plus the member's lane offset).
    scratch.acc_map.clear();
    scratch.acc_map.extend_from_slice(&spec.acc_map);
    scratch.acc.clear();
    for (pos, op) in ops.iter().enumerate() {
        let (acc, lanes, store) = match op {
            RunOp::Load { acc, lanes, .. } => (*acc, *lanes, false),
            RunOp::Store { acc, lanes, .. } => (*acc, *lanes, true),
            _ => continue,
        };
        let (t, l) = scratch.acc_map[acc as usize];
        let p = &scratch.tab[t as usize];
        scratch.acc.push(AccessPlan {
            base: p.base + l as isize * p.lane_stride,
            delta: p.delta,
            lane_stride: p.lane_stride,
            lanes,
            tile: p.tile,
            pos: pos as u32,
            store,
        });
    }
    scratch.streamed.clear();
    scratch.streamed.resize(ops.len(), false);
    scratch.row_of.clear();
    scratch.row_of.resize(ops.len(), 0);
    scratch.stream.clear();
    scratch.rec_first.clear();
    scratch.rec_steady.clear();

    // Hazard classification: a load is streamable iff no store of the
    // body can hit one of its lanes' addresses "from the past" of the
    // original interleaving (see `hazard`); a float op is streamable
    // iff all its operands are.
    for i in 0..ops.len() {
        let s = match &ops[i] {
            RunOp::Load { acc, .. } => {
                let load = scratch.acc[*acc as usize];
                !scratch
                    .acc
                    .iter()
                    .any(|store| store.store && hazard(&load, store, n))
            }
            RunOp::Store { .. } => false,
            RunOp::Bin { a, b, .. } => {
                fref_streamed(*a, &scratch.streamed) && fref_streamed(*b, &scratch.streamed)
            }
            RunOp::Un { a, .. } | RunOp::Splat { a, .. } => fref_streamed(*a, &scratch.streamed),
            RunOp::Fma { a, b, c, .. } => {
                fref_streamed(*a, &scratch.streamed)
                    && fref_streamed(*b, &scratch.streamed)
                    && fref_streamed(*c, &scratch.streamed)
            }
        };
        scratch.streamed[i] = s;
    }

    // Arena layout (grow-only, element offsets): the streamed ops'
    // stripe rows (`lanes·CHUNK` elements each, plus headroom for
    // lane-varying invariant operands, which must sit *below* their
    // consumer's row for the aliasing split in the chunk loops), then
    // `lanes` vals cells per body op, then materialized scalar
    // constants. Stripes are fully written before they are read within
    // each chunk and vals/constants are rewritten below, so stale
    // contents never leak and the run-after-run case skips the memset.
    // Rows hold one chunk of iterations; short runs (narrow tiles, or
    // few vector iterations after lane division) get proportionally
    // small rows. Safe because the run length is part of the plan-cache
    // key — a cached layout is only ever reused at the same `n`.
    let chunk = CHUNK.min(n);
    let row_budget: usize = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| scratch.streamed[*i])
        .map(|(_, o)| o.lanes() as usize * (chunk + 3))
        .sum();
    scratch.vals_of.clear();
    let mut v = row_budget as u32;
    for op in ops.iter() {
        scratch.vals_of.push(v);
        v += u32::from(op.lanes());
    }
    let vals_end = v as usize;
    let const_budget: usize = ops.iter().map(|o| 3 * o.lanes() as usize + 1).sum();
    let arena_len = vals_end + const_budget;
    if scratch.arena.len() < arena_len {
        scratch.arena.resize(arena_len, 0.0);
    }
    let mut next_const = vals_end;
    let mut row_cursor = 0u32;
    for (i, op) in ops.iter().enumerate() {
        if scratch.streamed[i] {
            let w = op.lanes();
            // Operand resolution may allocate lane-constant cells at
            // the row cursor; the op's own row is assigned after, so
            // every source offset stays strictly below it.
            macro_rules! s {
                ($r:expr, $w:expr) => {
                    ssrc(
                        $r,
                        $w,
                        fregs,
                        vregs,
                        &scratch.row_of,
                        ops,
                        &mut scratch.arena,
                        &mut row_cursor,
                    )
                };
            }
            let sop = match op {
                RunOp::Load { acc, lanes, .. } => {
                    let a = scratch.acc[*acc as usize];
                    SOp::Load {
                        row: 0, // patched below once the row is assigned
                        lanes: *lanes,
                        lane_stride: a.lane_stride,
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Bin { op, a, b, lanes } => SOp::Bin {
                    op: *op,
                    row: 0,
                    lanes: *lanes,
                    a: s!(*a, *lanes),
                    b: s!(*b, *lanes),
                },
                RunOp::Un { op, a, lanes } => SOp::Un {
                    op: *op,
                    row: 0,
                    lanes: *lanes,
                    a: s!(*a, *lanes),
                },
                RunOp::Fma { a, b, c, lanes } => SOp::Fma {
                    row: 0,
                    lanes: *lanes,
                    a: s!(*a, *lanes),
                    b: s!(*b, *lanes),
                    c: s!(*c, *lanes),
                },
                RunOp::Splat { a, lanes } => SOp::Splat {
                    row: 0,
                    lanes: *lanes,
                    a: s!(*a, 1),
                },
                RunOp::Store { .. } => unreachable!("stores are never streamed"),
            };
            let row = row_cursor;
            row_cursor += u32::from(w) * chunk as u32;
            scratch.row_of[i] = row;
            let mut sop = sop;
            match &mut sop {
                SOp::Load { row: r, .. }
                | SOp::Bin { row: r, .. }
                | SOp::Un { row: r, .. }
                | SOp::Fma { row: r, .. }
                | SOp::Splat { row: r, .. } => *r = row,
                SOp::BinLoads { .. } => unreachable!("fusion runs later"),
            }
            scratch.stream.push(sop);
        } else {
            macro_rules! r {
                ($r:expr, $w:expr) => {
                    rref(
                        $r,
                        $w,
                        fregs,
                        vregs,
                        &scratch.streamed,
                        &scratch.row_of,
                        &scratch.vals_of,
                        ops,
                        &mut scratch.arena,
                        &mut next_const,
                    )
                };
            }
            let dst = scratch.vals_of[i];
            let rop = match op {
                RunOp::Load { acc, lanes, .. } => {
                    let a = scratch.acc[*acc as usize];
                    ROp::Load {
                        dst,
                        lanes: *lanes,
                        lane_stride: a.lane_stride,
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Store { src, acc, lanes, .. } => {
                    let a = scratch.acc[*acc as usize];
                    ROp::Store {
                        src: r!(*src, *lanes),
                        lanes: *lanes,
                        lane_stride: a.lane_stride,
                        base: a.base,
                        delta: a.delta,
                        tile: a.tile,
                        acc: *acc,
                    }
                }
                RunOp::Bin { op, a, b, lanes } => ROp::Bin {
                    op: *op,
                    dst,
                    lanes: *lanes,
                    a: r!(*a, *lanes),
                    b: r!(*b, *lanes),
                },
                RunOp::Un { op, a, lanes } => ROp::Un {
                    op: *op,
                    dst,
                    lanes: *lanes,
                    a: r!(*a, *lanes),
                },
                RunOp::Fma { a, b, c, lanes } => ROp::Fma {
                    dst,
                    lanes: *lanes,
                    a: r!(*a, *lanes),
                    b: r!(*b, *lanes),
                    c: r!(*c, *lanes),
                },
                RunOp::Splat { a, lanes } => ROp::Splat {
                    dst,
                    lanes: *lanes,
                    a: r!(*a, 1),
                },
            };
            scratch.rec_first.push(rop);
        }
    }
    debug_assert!(row_cursor as usize <= row_budget);
    fuse_stream_loads(scratch);
    build_steady(scratch, n, row_budget, vals_end);
    if std::env::var_os("INSTENCIL_RUN_DEBUG").is_some() && scratch.cached_spec == 0 {
        eprintln!(
            "plan: probe={} probe_iv={} ops={} accs={}",
            spec.probe.len(),
            spec.probe_iv.len(),
            spec.ops.len(),
            scratch.acc.len()
        );
        eprintln!("plan: stream={:?}", scratch.stream);
        eprintln!("plan: rec_first={:?}", scratch.rec_first);
        eprintln!("plan: rec_steady={:?}", scratch.rec_steady);
    }
    // Record the cache signature for the next run (over the merged
    // table: per-op signatures are an affine expansion of the entry
    // signatures, so entry-level equality implies op-level equality).
    scratch.cached_spec = spec as *const RunSpec as usize;
    scratch.cached_n = n;
    let base0 = scratch.tab[0].base;
    scratch.sig.clear();
    scratch
        .sig
        .extend(
            scratch
                .tab
                .iter()
                .map(|a| (a.delta, a.tile.id(), a.base - base0, a.lane_stride)),
        );
    scratch.inv_vals.clear();
    scratch.inv_vvals.clear();
    // Registers whose value at plan time is a literal the probe itself
    // just wrote (`CF`/`CV`, not later overwritten by `S2F`): the probe
    // reruns before every plan, so these can never drift from the
    // snapshot — recording them would re-verify a tautology on every
    // cache hit, per consumer and per lane.
    let mut fconst: HashSet<u32> = HashSet::new();
    let mut vconst: HashSet<u32> = HashSet::new();
    for p in spec.probe.iter() {
        match p {
            ProbeOp::CF { dst, .. } => {
                fconst.insert(*dst);
            }
            ProbeOp::S2F { dst, .. } => {
                fconst.remove(dst);
            }
            ProbeOp::CV { off, lanes, .. } => {
                for l in 0..*lanes {
                    vconst.insert(*off + l);
                }
            }
            _ => {}
        }
    }
    for op in ops.iter() {
        let lanes = op.lanes();
        let mut note = |r: &FRef, w: u16| match r {
            FRef::Inv(reg) => {
                if !fconst.contains(reg) {
                    scratch.inv_vals.push((*reg, fregs[*reg as usize]));
                }
            }
            FRef::VInv(off) => {
                for l in 0..u32::from(w) {
                    if !vconst.contains(&(*off + l)) {
                        scratch
                            .inv_vvals
                            .push((*off + l, vregs[(*off + l) as usize]));
                    }
                }
            }
            FRef::Op(_) | FRef::Lane(..) => {}
        };
        match op {
            RunOp::Bin { a, b, .. } => {
                note(a, lanes);
                note(b, lanes);
            }
            RunOp::Un { a, .. } => note(a, lanes),
            RunOp::Fma { a, b, c, .. } => {
                note(a, lanes);
                note(b, lanes);
                note(c, lanes);
            }
            RunOp::Store { src, .. } => note(src, lanes),
            RunOp::Splat { a, .. } => note(a, 1),
            RunOp::Load { .. } => {}
        }
    }
    // An invariant register read by several consumers needs verifying
    // once, not per consumer.
    scratch.inv_vals.sort_unstable_by_key(|&(r, _)| r);
    scratch.inv_vals.dedup_by_key(|&mut (r, _)| r);
    scratch.inv_vvals.sort_unstable_by_key(|&(r, _)| r);
    scratch.inv_vvals.dedup_by_key(|&mut (r, _)| r);
    if let Some(t) = t_miss {
        phase_timing::record_miss_ns(t.elapsed());
    }
    trace::end(
        TraceKind::PlanCompile,
        t_compile,
        (spec as *const RunSpec as usize >> 4) as u32,
        n as u32,
    );
    false
}

/// Fuses `Bin(Slot(x), Slot(y))` with the loads producing rows `x` and
/// `y` into one [`SOp::BinLoads`] when this op is the rows' only
/// consumer — in the stream and in the recurrent tapes. The two staging
/// passes over the chunk disappear; the fused loop reads both tiles
/// directly, which is the same read the staging copy would have done.
fn fuse_stream_loads(scratch: &mut RunScratch) {
    // Any read touching an element of `[row, row + lanes)` consumes the
    // row (lane refs carry `row + lane` offsets; lane-constant cells
    // never alias a load's row by construction).
    let in_row = |off: u32, row: u32, lanes: u16| off >= row && off < row + u32::from(lanes);
    let rec_reads = |row: u32, lanes: u16| {
        let rr = |r: &RRef| r.step != 0 && in_row(r.off, row, lanes);
        scratch.rec_first.iter().any(|op| match op {
            ROp::Load { .. } | ROp::Carry { .. } => false,
            ROp::Store { src, .. } => rr(src),
            ROp::Bin { a, b, .. } => rr(a) || rr(b),
            ROp::Un { a, .. } | ROp::Splat { a, .. } => rr(a),
            ROp::Fma { a, b, c, .. } => rr(a) || rr(b) || rr(c),
            ROp::Chain { .. } | ROp::ChainStore { .. } | ROp::ChainStoreW { .. } => {
                unreachable!("stream fusion runs before build_steady")
            }
        })
    };
    for k in 0..scratch.stream.len() {
        let SOp::Bin {
            op,
            row,
            lanes,
            a: SSrc::Row { off: x, step: sx },
            b: SSrc::Row { off: y, step: sy },
        } = scratch.stream[k]
        else {
            continue;
        };
        // Both operands must be whole aligned rows of the same width as
        // the consumer (step == lanes and offset at a load's row start).
        if sx != u32::from(lanes) || sy != u32::from(lanes) {
            continue;
        }
        let reads = |s: &SSrc, row: u32| matches!(s, SSrc::Row { off, .. } if in_row(*off, row, lanes));
        let other_consumer = |r: u32| {
            scratch.stream.iter().enumerate().any(|(j, op)| match op {
                SOp::Load { .. } | SOp::BinLoads { .. } => false,
                SOp::Bin { a, b, .. } => j != k && (reads(a, r) || reads(b, r)),
                SOp::Un { a, .. } | SOp::Splat { a, .. } => reads(a, r),
                SOp::Fma { a, b, c, .. } => reads(a, r) || reads(b, r) || reads(c, r),
            }) || rec_reads(r, lanes)
        };
        // A wide fused load must be dense (contiguous lanes, row-major
        // advance) so the fused loop reads `m·lanes` consecutive
        // elements; scalar loads may stride arbitrarily.
        let load_of = |r: u32| {
            scratch.stream.iter().position(|op| {
                matches!(op, SOp::Load { row, lanes: ll, lane_stride, delta, .. }
                    if *row == r
                        && *ll == lanes
                        && (lanes == 1 || (*lane_stride == 1 && *delta == lanes as isize)))
            })
        };
        let (Some(la), Some(lb)) = (load_of(x), load_of(y)) else {
            continue;
        };
        if other_consumer(x) || (y != x && other_consumer(y)) {
            continue;
        }
        let SOp::Load {
            base: a_base,
            delta: a_delta,
            tile: a_tile,
            acc: a_acc,
            ..
        } = scratch.stream[la]
        else {
            unreachable!()
        };
        let SOp::Load {
            base: b_base,
            delta: b_delta,
            tile: b_tile,
            acc: b_acc,
            ..
        } = scratch.stream[lb]
        else {
            unreachable!()
        };
        scratch.stream[k] = SOp::BinLoads {
            op,
            row,
            lanes,
            a_base,
            a_delta,
            a_tile,
            a_acc,
            b_base,
            b_delta,
            b_tile,
            b_acc,
        };
        // Drop the now-unconsumed loads (their slots stay allocated,
        // simply unwritten). Remove the higher index first.
        let (hi, lo) = (la.max(lb), la.min(lb));
        scratch.stream.remove(hi);
        if hi != lo {
            scratch.stream.remove(lo);
        }
        return fuse_stream_loads(scratch); // indices shifted; rescan
    }
}

/// Whether the cached plan in `scratch` is valid for this run: same
/// spec, same length, same per-access deltas, allocations, and
/// inter-access base offsets (⇒ identical hazard classification), and
/// unchanged invariant operand values.
fn plan_cache_hit(
    spec: &RunSpec,
    n: usize,
    fregs: &[f64],
    vregs: &[f64],
    scratch: &RunScratch,
) -> bool {
    if scratch.cached_spec != spec as *const RunSpec as usize
        || scratch.cached_n != n
        || scratch.sig.len() != scratch.tab.len()
    {
        return false;
    }
    let base0 = scratch.tab[0].base;
    if !scratch
        .tab
        .iter()
        .zip(&scratch.sig)
        .all(|(a, s)| (a.delta, a.tile.id(), a.base - base0, a.lane_stride) == *s)
    {
        return false;
    }
    scratch
        .inv_vals
        .iter()
        .all(|&(reg, v)| fregs[reg as usize].to_bits() == v.to_bits())
        && scratch
            .inv_vvals
            .iter()
            .all(|&(off, v)| vregs[off as usize].to_bits() == v.to_bits())
}

/// Rewrites the flat base addresses *and tile handles* of the cached
/// plan to this run's resolved accesses (everything else —
/// classification, slots, deltas, constants — is unchanged by
/// construction on a cache hit). Tiles must be refreshed, not just
/// revalidated: the signature proves the fresh access resolves to the
/// same allocation *address* as the cached one, but scratch outlives
/// single calls (the engine pools it across frames), so the cached
/// `TileView` copies may be stale handles from a previous call whose
/// buffers are gone. After patching, every pointer the hit path
/// dereferences comes from the current frame's live buffer registers.
fn patch_bases(scratch: &mut RunScratch) {
    let tab = &scratch.tab;
    let map = &scratch.acc_map;
    let b = |a: u16| {
        let (t, l) = map[a as usize];
        let p = &tab[t as usize];
        (p.base + l as isize * p.lane_stride, p.tile)
    };
    for op in &mut scratch.stream {
        match op {
            SOp::Load {
                base, tile, acc: a, ..
            } => (*base, *tile) = b(*a),
            SOp::BinLoads {
                a_base,
                a_tile,
                a_acc,
                b_base,
                b_tile,
                b_acc,
                ..
            } => {
                (*a_base, *a_tile) = b(*a_acc);
                (*b_base, *b_tile) = b(*b_acc);
            }
            _ => {}
        }
    }
    // `rec_first` is never executed (analysis input only), so only the
    // steady tape's bases need patching.
    for op in &mut scratch.rec_steady {
        match op {
            ROp::Load {
                base, tile, acc: a, ..
            }
            | ROp::Store {
                base, tile, acc: a, ..
            }
            | ROp::ChainStore {
                base, tile, acc: a, ..
            } => {
                (*base, *tile) = b(*a);
            }
            ROp::ChainStoreW { lanes, .. } => {
                for lane in lanes.iter_mut() {
                    (lane.base, lane.tile) = b(lane.acc);
                }
            }
            _ => {}
        }
    }
}

#[inline]
fn fref_streamed(r: FRef, streamed: &[bool]) -> bool {
    match r {
        FRef::Inv(_) | FRef::VInv(_) => true,
        FRef::Op(j) | FRef::Lane(j, _) => streamed[j as usize],
    }
}

/// Resolves a streamed operand for a consumer of width `w`.
/// Lane-varying invariant vectors are materialized as `w` cells at the
/// row cursor — strictly below the consumer's (not yet assigned) row,
/// which keeps the `dst_row` aliasing split valid.
#[inline]
#[allow(clippy::too_many_arguments)]
fn ssrc(
    r: FRef,
    w: u16,
    fregs: &[f64],
    vregs: &[f64],
    row_of: &[u32],
    ops: &[RunOp],
    arena: &mut [f64],
    row_cursor: &mut u32,
) -> SSrc {
    match r {
        FRef::Inv(reg) => SSrc::Const(fregs[reg as usize]),
        FRef::VInv(off) => {
            let v = &vregs[off as usize..off as usize + w as usize];
            if v.iter().all(|x| x.to_bits() == v[0].to_bits()) {
                SSrc::Const(v[0])
            } else {
                let at = *row_cursor as usize;
                arena[at..at + w as usize].copy_from_slice(v);
                *row_cursor += u32::from(w);
                SSrc::Row {
                    off: at as u32,
                    step: 0,
                }
            }
        }
        FRef::Op(j) => SSrc::Row {
            off: row_of[j as usize],
            step: u32::from(ops[j as usize].lanes()),
        },
        FRef::Lane(j, lane) => SSrc::Row {
            off: row_of[j as usize] + u32::from(lane),
            step: u32::from(ops[j as usize].lanes()),
        },
    }
}

/// Resolves a recurrent operand for a consumer of width `w` to its
/// arena offset, materializing run-invariant values (replicated to `w`
/// cells for wide consumers) into the constants tail.
#[inline]
#[allow(clippy::too_many_arguments)]
fn rref(
    r: FRef,
    w: u16,
    fregs: &[f64],
    vregs: &[f64],
    streamed: &[bool],
    row_of: &[u32],
    vals_of: &[u32],
    ops: &[RunOp],
    arena: &mut [f64],
    next_const: &mut usize,
) -> RRef {
    match r {
        FRef::Inv(reg) => {
            let off = *next_const;
            *next_const += w as usize;
            arena[off..off + w as usize].fill(fregs[reg as usize]);
            RRef {
                off: off as u32,
                step: 0,
            }
        }
        FRef::VInv(voff) => {
            let off = *next_const;
            *next_const += w as usize;
            arena[off..off + w as usize]
                .copy_from_slice(&vregs[voff as usize..voff as usize + w as usize]);
            RRef {
                off: off as u32,
                step: 0,
            }
        }
        FRef::Op(j) if streamed[j as usize] => RRef {
            off: row_of[j as usize],
            step: u32::from(ops[j as usize].lanes()),
        },
        FRef::Op(j) => RRef {
            off: vals_of[j as usize],
            step: 0,
        },
        FRef::Lane(j, lane) if streamed[j as usize] => RRef {
            off: row_of[j as usize] + u32::from(lane),
            step: u32::from(ops[j as usize].lanes()),
        },
        FRef::Lane(j, lane) => RRef {
            off: vals_of[j as usize] + u32::from(lane),
            step: 0,
        },
    }
}

/// Builds the steady-state recurrent tape from `rec_first`. A scalar
/// `Load` whose address was last written by a store of this same body —
/// either one iteration earlier (k = −1) or earlier in the current
/// iteration (k = 0, store before load in body order) — re-reads a
/// value the plan already holds, so it is forwarded: its consumers are
/// repointed at the store's source operand (for k = −1 only while that
/// source has not been recomputed this iteration; a k = 0 source is
/// always already this iteration's value), or the load degrades to a
/// `Carry` copy. The steady tape is valid from t = 0: each k = −1
/// forward's source cell is pre-seeded (`prelude`) with the value its
/// load would have read from pre-run memory, so no separate
/// first-iteration execution remains.
fn build_steady(scratch: &mut RunScratch, n: usize, row_budget: usize, vals_end: usize) {
    // Body-op index owning a step-0 vals cell (None for stripe rows,
    // lane-constant cells, and the constants tail — all of which hold
    // values no recurrent op rewrites mid-iteration).
    let vals_of = &scratch.vals_of;
    let owner = |off: u32| -> Option<usize> {
        let off = off as usize;
        if off < row_budget || off >= vals_end {
            return None;
        }
        let i = vals_of.partition_point(|&v| v as usize <= off) - 1;
        Some(i)
    };
    // dst offset of a forwardable load → (store source, k).
    let mut fwd: Vec<(u32, RRef, i64)> = Vec::new();
    let mut prelude: Vec<(u32, u16)> = Vec::new();
    for op in &scratch.rec_first {
        let ROp::Load { dst, lanes: 1, acc, .. } = op else {
            continue;
        };
        let la = scratch.acc[*acc as usize];
        if la.delta == 0 {
            continue;
        }
        let d = la.delta;
        // Find the sequentially latest store hitting this load's address
        // sequence. All stores on the tile must share the load's delta
        // (conservative bail otherwise); a divisible base difference
        // identifies the aliasing ones, and among those that the
        // original interleaving orders before the load, the largest
        // (k, pos) wrote last.
        let mut best: Option<(i64, u32)> = None;
        let mut bail = false;
        for sa in scratch.acc.iter() {
            if !sa.store || sa.tile.id() != la.tile.id() {
                continue;
            }
            if sa.delta != d {
                bail = true;
                break;
            }
            // A wide store is one plan; each lane is its own address
            // sequence. (A wide winner never forwards — the scalar
            // store-source lookup below only matches `lanes: 1` — but
            // its lanes still participate in picking the latest writer,
            // which keeps a scalar store from winning incorrectly.)
            for sl in 0..sa.lanes as isize {
                let diff = la.base - (sa.base + sl * sa.lane_stride);
                if diff % d != 0 {
                    continue;
                }
                let k = (diff / d) as i64;
                let reaches = (k >= -((n as i64) - 1) && k <= -1) || (k == 0 && sa.pos < la.pos);
                if reaches && best.is_none_or(|b| (k, sa.pos) > b) {
                    best = Some((k, sa.pos));
                }
            }
        }
        if bail {
            continue;
        }
        let Some((k, spos)) = best else { continue };
        if k != -1 && k != 0 {
            continue; // writer too far back: keep the real load
        }
        // The (scalar) store op at that body position; its source.
        let src = scratch.rec_first.iter().find_map(|op| match op {
            ROp::Store { src, lanes: 1, acc, .. }
                if scratch.acc[*acc as usize].pos == spos =>
            {
                Some(*src)
            }
            _ => None,
        });
        let Some(src) = src else { continue };
        if k == -1 {
            // The previous iteration's source value must survive into
            // this one: a step-0 cell rewritten only after the load's
            // position (or never — constants/lane cells).
            if src.step != 0 {
                continue;
            }
            match owner(src.off) {
                Some(p) if p <= la.pos as usize => continue,
                _ => {}
            }
            // At t = 0 there is no previous iteration: seed the source
            // cell with the load's own t = 0 memory value before the
            // first chunk. No store of this run writes that address
            // before the original t = 0 load would have read it (the
            // aliasing store lands there at t′ = −1; any other store
            // with k′ = 0 is ordered after the load, and k′ ≥ 1 stores
            // never reach it).
            prelude.push((src.off, *acc));
        }
        fwd.push((*dst, src, k));
    }
    let fwd_of = |off: u32| fwd.iter().find(|(d, _, _)| *d == off).map(|&(_, s, k)| (s, k));
    // A consumer at body position p may read a k = −1 source directly
    // only while it still holds the previous iteration's value, i.e.
    // when the source is produced after p. k = 0 sources already hold
    // this iteration's value at every position past the store.
    let live_at = |src: RRef, k: i64, pos: usize| {
        k == 0 || src.step != 0 || owner(src.off).is_none_or(|p| p > pos)
    };
    let mut steady: Vec<ROp> = Vec::new();
    for op in &scratch.rec_first {
        let mut op = op.clone();
        let patch = |r: &mut RRef, pos: usize| {
            if r.step == 0 {
                if let Some((src, k)) = fwd_of(r.off) {
                    if live_at(src, k, pos) {
                        *r = src;
                    }
                }
            }
        };
        let pos_of_dst = |dst: u32| owner(dst).expect("recurrent dst is a vals cell");
        match &mut op {
            ROp::Load { dst, .. } => {
                if let Some((src, k)) = fwd_of(*dst) {
                    let dst = *dst;
                    // Keep a Carry if any consumer still reads vals[dst]
                    // (the redirect below was invalid for it).
                    let all_redirected = scratch.rec_first.iter().all(|c| {
                        let (refs, pos): (Vec<RRef>, usize) = match c {
                            ROp::Bin { a, b, dst, .. } => (vec![*a, *b], pos_of_dst(*dst)),
                            ROp::Un { a, dst, .. } | ROp::Splat { a, dst, .. } => {
                                (vec![*a], pos_of_dst(*dst))
                            }
                            ROp::Fma { a, b, c, dst, .. } => (vec![*a, *b, *c], pos_of_dst(*dst)),
                            ROp::Store { src, acc, .. } => {
                                (vec![*src], scratch.acc[*acc as usize].pos as usize)
                            }
                            ROp::Load { .. } | ROp::Carry { .. } => (vec![], 0),
                            ROp::Chain { .. }
                            | ROp::ChainStore { .. }
                            | ROp::ChainStoreW { .. } => {
                                unreachable!("fusion runs after build_steady")
                            }
                        };
                        refs.iter()
                            .filter(|r| r.step == 0 && r.off == dst)
                            .all(|_| live_at(src, k, pos))
                    });
                    if all_redirected {
                        continue; // load disappears from the steady tape
                    }
                    if src.step != 0 {
                        // A row-sourced k = 0 forward has no scalar cell
                        // to Carry from; keep the load for the laggards.
                        steady.push(op);
                        continue;
                    }
                    steady.push(ROp::Carry { dst, src: src.off });
                    continue;
                }
            }
            ROp::Bin { a, b, dst, .. } => {
                let pos = pos_of_dst(*dst);
                patch(a, pos);
                patch(b, pos);
            }
            ROp::Un { a, dst, .. } | ROp::Splat { a, dst, .. } => {
                let pos = pos_of_dst(*dst);
                patch(a, pos);
            }
            ROp::Fma { a, b, c, dst, .. } => {
                let pos = pos_of_dst(*dst);
                patch(a, pos);
                patch(b, pos);
                patch(c, pos);
            }
            ROp::Store { src, acc, .. } => {
                let pos = scratch.acc[*acc as usize].pos as usize;
                patch(src, pos);
            }
            ROp::Carry { .. } => {}
            ROp::Chain { .. } | ROp::ChainStore { .. } | ROp::ChainStoreW { .. } => {
                unreachable!("fusion runs after build_steady")
            }
        }
        steady.push(op);
    }
    fuse_chains(&mut steady);
    scratch.prelude = prelude;
    scratch.rec_steady = steady;
}

/// Fuses maximal runs of consecutive `Bin` ops where each op's result
/// is read exactly once, by the immediately following op, into
/// [`ROp::Chain`] superinstructions (Ertl & Gregg-style: amortize
/// dispatch over the whole dependent sequence). Intermediate arena
/// writes disappear with their only reader.
fn fuse_chains(steady: &mut Vec<ROp>) {
    let mut reads: HashMap<u32, u32> = HashMap::new();
    let mut note = |r: &RRef| {
        if r.step == 0 {
            *reads.entry(r.off).or_insert(0) += 1;
        }
    };
    for op in steady.iter() {
        match op {
            ROp::Bin { a, b, .. } => {
                note(a);
                note(b);
            }
            ROp::Un { a, .. } => note(a),
            ROp::Fma { a, b, c, .. } => {
                note(a);
                note(b);
                note(c);
            }
            ROp::Store { src, .. } => note(src),
            ROp::Splat { a, .. } => note(a),
            ROp::Carry { src, .. } => note(&RRef { off: *src, step: 0 }),
            ROp::Load { .. } => {}
            ROp::Chain { .. } | ROp::ChainStore { .. } | ROp::ChainStoreW { .. } => {
                unreachable!("fusion runs once")
            }
        }
    }
    let single_use = |off: u32| reads.get(&off).copied() == Some(1);
    let mut out: Vec<ROp> = Vec::with_capacity(steady.len());
    let mut i = 0;
    while i < steady.len() {
        let ROp::Bin {
            op,
            dst,
            lanes: 1,
            a,
            b,
        } = steady[i]
        else {
            out.push(steady[i].clone());
            i += 1;
            continue;
        };
        let mut links = vec![ChainLink {
            op,
            other: b,
            acc_rhs: false,
        }];
        let mut cur = dst;
        let mut j = i;
        while let Some(ROp::Bin {
            op: nop,
            dst: ndst,
            lanes: 1,
            a: na,
            b: nb,
        }) = steady.get(j + 1)
        {
            if !single_use(cur) {
                break;
            }
            if na.step == 0 && na.off == cur {
                links.push(ChainLink {
                    op: *nop,
                    other: *nb,
                    acc_rhs: false,
                });
            } else if nb.step == 0 && nb.off == cur {
                links.push(ChainLink {
                    op: *nop,
                    other: *na,
                    acc_rhs: true,
                });
            } else {
                break;
            }
            cur = *ndst;
            j += 1;
        }
        if j > i {
            out.push(ROp::Chain {
                dst: cur,
                init: a,
                links: links.into(),
            });
            i = j + 1;
        } else {
            out.push(steady[i].clone());
            i += 1;
        }
    }
    // Second pass: a store that immediately follows the chain producing
    // its source value rides along in the chain's dispatch.
    let mut merged: Vec<ROp> = Vec::with_capacity(out.len());
    let mut it = out.into_iter().peekable();
    while let Some(op) = it.next() {
        if let ROp::Chain { dst, init, links } = &op {
            if let Some(ROp::Store {
                src,
                lanes: 1,
                base,
                delta,
                tile,
                acc,
                ..
            }) = it.peek()
            {
                if src.step == 0 && src.off == *dst {
                    merged.push(ROp::ChainStore {
                        dst: *dst,
                        init: *init,
                        links: links.clone(),
                        base: *base,
                        delta: *delta,
                        tile: *tile,
                        acc: *acc,
                    });
                    it.next();
                    continue;
                }
            }
        }
        merged.push(op);
    }
    // Third pass: a steady tape that is nothing but `w` chain-stores
    // forming one lane-unrolled serial recurrence (the §2.4 partial
    // vectorization shape: lane k's chain consumes lane k − 1's value,
    // lane 0 consumes lane w − 1's previous-iteration value) fuses into
    // a single wide chain-store whose carry lives in a register.
    if let Some(wide) = fuse_wide_chain(&merged) {
        merged = vec![wide];
    }
    *steady = merged;
}

/// Recognizes a steady tape consisting solely of `w ≥ 2` chain-stores
/// whose only cross-references are the ring of carried values, and
/// builds the fused [`ROp::ChainStoreW`]. Returns `None` when any
/// operand besides the per-lane carry touches a chain destination (the
/// register loop would then skip an arena write some reader needs).
fn fuse_wide_chain(steady: &[ROp]) -> Option<ROp> {
    if steady.len() < 2 {
        return None;
    }
    let mut dsts = Vec::with_capacity(steady.len());
    for op in steady {
        let ROp::ChainStore { dst, links, .. } = op else {
            return None;
        };
        if links.len() > CHAIN_MAX {
            return None;
        }
        dsts.push(*dst);
    }
    let w = dsts.len();
    let is_dst = |r: &RRef| r.step == 0 && dsts.contains(&r.off);
    let mut lanes = Vec::with_capacity(w);
    for (k, op) in steady.iter().enumerate() {
        let ROp::ChainStore {
            dst,
            init,
            links,
            base,
            delta,
            tile,
            acc,
        } = op
        else {
            unreachable!()
        };
        if is_dst(init) {
            return None;
        }
        let want = dsts[(k + w - 1) % w];
        let mut carry_at = None;
        for (j, lk) in links.iter().enumerate() {
            if !is_dst(&lk.other) {
                continue;
            }
            if lk.other.off != want || carry_at.is_some() {
                return None;
            }
            carry_at = Some(j as u16);
        }
        lanes.push(WLane {
            dst: *dst,
            init: *init,
            links: links.clone(),
            carry_at: carry_at?,
            base: *base,
            delta: *delta,
            tile: *tile,
            acc: *acc,
        });
    }
    Some(ROp::ChainStoreW {
        lanes: lanes.into(),
        carry_cell: dsts[w - 1],
    })
}

/// Whether streaming `load` (reading its whole address sequence from
/// pre-run memory) could observe a different value than the original
/// point-by-point interleaving with `store`.
///
/// With equal per-iteration deltas `d`, the store of iteration `t'`
/// hits the load address of iteration `t` exactly when
/// `t' = t + (Lbase − Sbase)/d`; under the original order the load of
/// iteration `t` sees the store of iteration `t'` iff `t' < t`, or
/// `t' = t` when the store precedes the load in the body. Unequal
/// deltas over overlapping ranges are conservatively hazardous.
fn hazard(load: &AccessPlan, store: &AccessPlan, n: usize) -> bool {
    debug_assert!(store.store && !load.store);
    if load.tile.id() != store.tile.id() {
        return false;
    }
    let last = (n - 1) as isize;
    // Bounding box over all lanes and iterations (conservative for the
    // unequal-delta early-out; the modular check below is per lane
    // pair, exactly what per-lane plans used to test).
    let range = |a: &AccessPlan| {
        let span = (a.lanes as isize - 1) * a.lane_stride;
        let ends = [
            a.base,
            a.base + last * a.delta,
            a.base + span,
            a.base + last * a.delta + span,
        ];
        (*ends.iter().min().unwrap(), *ends.iter().max().unwrap())
    };
    let (llo, lhi) = range(load);
    let (slo, shi) = range(store);
    if lhi < slo || shi < llo {
        return false;
    }
    if load.delta != store.delta {
        return true;
    }
    let d = load.delta;
    if d == 0 {
        // Same single address for the whole run: the load would observe
        // every store after the first iteration.
        return true;
    }
    for ll in 0..load.lanes as isize {
        for sl in 0..store.lanes as isize {
            let diff =
                (load.base + ll * load.lane_stride) - (store.base + sl * store.lane_stride);
            if diff % d != 0 {
                continue;
            }
            let k = diff / d;
            if (k >= -last && k <= -1) || (k == 0 && store.pos < load.pos) {
                return true;
            }
        }
    }
    false
}

/// Executes the streamed plan for in-chunk iterations `[t0, t0 + m)`:
/// one operation at a time over the whole chunk, into/over stripe rows
/// of constant stride [`CHUNK`] — the loops LLVM autovectorizes.
pub(crate) fn exec_streamed(stream: &[SOp], stripe: &mut [f64], t0: usize, m: usize) {
    for op in stream {
        match op {
            SOp::Load {
                row,
                lanes,
                lane_stride,
                base,
                delta,
                tile,
                ..
            } => {
                let w = *lanes as usize;
                let start = base + t0 as isize * delta;
                let row = *row as usize;
                if w == 1 {
                    if *delta == 1 {
                        let s = start as usize;
                        for (l, o) in stripe[row..row + m].iter_mut().enumerate() {
                            *o = tile.get(s + l);
                        }
                    } else {
                        let d = *delta;
                        for (l, o) in stripe[row..row + m].iter_mut().enumerate() {
                            *o = tile.get((start + l as isize * d) as usize);
                        }
                    }
                } else if *lane_stride == 1 && *delta == w as isize {
                    // Dense wide load: the run's lanes tile memory
                    // contiguously — one flat copy of m·w elements.
                    let s = start as usize;
                    for (e, o) in stripe[row..row + m * w].iter_mut().enumerate() {
                        *o = tile.get(s + e);
                    }
                } else {
                    let (d, ls) = (*delta, *lane_stride);
                    for t in 0..m {
                        let b = start + t as isize * d;
                        for l in 0..w {
                            stripe[row + t * w + l] = tile.get((b + l as isize * ls) as usize);
                        }
                    }
                }
            }
            SOp::Bin {
                op,
                row,
                lanes,
                a,
                b,
            } => match op {
                FOp::Add => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Add.apply(x, y)),
                FOp::Sub => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Sub.apply(x, y)),
                FOp::Mul => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Mul.apply(x, y)),
                FOp::Div => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Div.apply(x, y)),
                FOp::Max => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Max.apply(x, y)),
                FOp::Min => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Min.apply(x, y)),
                FOp::Pow => bin_chunk(stripe, m, *row, *lanes, *a, *b, |x, y| FOp::Pow.apply(x, y)),
            },
            SOp::Un { op, row, lanes, a } => match op {
                FUn::Neg => un_chunk(stripe, m, *row, *lanes, *a, |x| FUn::Neg.apply(x)),
                FUn::Sqrt => un_chunk(stripe, m, *row, *lanes, *a, |x| FUn::Sqrt.apply(x)),
                FUn::Abs => un_chunk(stripe, m, *row, *lanes, *a, |x| FUn::Abs.apply(x)),
                FUn::Exp => un_chunk(stripe, m, *row, *lanes, *a, |x| FUn::Exp.apply(x)),
            },
            SOp::BinLoads {
                op,
                row,
                lanes,
                a_base,
                a_delta,
                a_tile,
                b_base,
                b_delta,
                b_tile,
                ..
            } => {
                let w = *lanes as usize;
                let sa = a_base + t0 as isize * a_delta;
                let sb = b_base + t0 as isize * b_delta;
                let row = *row as usize;
                let out = &mut stripe[row..row + m * w];
                // Wide fused loads are dense by construction (element
                // stride 1); scalar ones stride by delta per element.
                let (da, db) = if w > 1 { (1, 1) } else { (*a_delta, *b_delta) };
                macro_rules! loop_for {
                    ($f:expr) => {
                        if (da, db) == (1, 1) {
                            let (sa, sb) = (sa as usize, sb as usize);
                            for (e, o) in out.iter_mut().enumerate() {
                                *o = $f(a_tile.get(sa + e), b_tile.get(sb + e));
                            }
                        } else {
                            for (e, o) in out.iter_mut().enumerate() {
                                let e = e as isize;
                                *o = $f(
                                    a_tile.get((sa + e * da) as usize),
                                    b_tile.get((sb + e * db) as usize),
                                );
                            }
                        }
                    };
                }
                match op {
                    FOp::Add => loop_for!(|x, y| FOp::Add.apply(x, y)),
                    FOp::Sub => loop_for!(|x, y| FOp::Sub.apply(x, y)),
                    FOp::Mul => loop_for!(|x, y| FOp::Mul.apply(x, y)),
                    FOp::Div => loop_for!(|x, y| FOp::Div.apply(x, y)),
                    FOp::Max => loop_for!(|x, y| FOp::Max.apply(x, y)),
                    FOp::Min => loop_for!(|x, y| FOp::Min.apply(x, y)),
                    FOp::Pow => loop_for!(|x, y| FOp::Pow.apply(x, y)),
                }
            }
            SOp::Fma {
                row,
                lanes,
                a,
                b,
                c,
            } => {
                let w = *lanes as usize;
                let (src, out) = dst_row(stripe, *row, m * w);
                for t in 0..m {
                    for l in 0..w {
                        out[t * w + l] = sread(src, *a, t, l)
                            .mul_add(sread(src, *b, t, l), sread(src, *c, t, l));
                    }
                }
            }
            SOp::Splat { row, lanes, a } => {
                let w = *lanes as usize;
                let (src, out) = dst_row(stripe, *row, m * w);
                match a {
                    SSrc::Const(c) => out.fill(*c),
                    SSrc::Row { off, step } => {
                        let (off, step) = (*off as usize, *step as usize);
                        for t in 0..m {
                            out[t * w..(t + 1) * w].fill(src[off + t * step]);
                        }
                    }
                }
            }
        }
    }
}

/// Reads element (in-chunk iteration `t`, lane `l`) of a streamed
/// source: `off + t·step + l`. Scalar rows have step 1; wide rows step
/// by their lane count; lane-constant cells (step 0) repeat each
/// iteration; single-lane refs into wide rows fold the lane into `off`
/// and step over it.
#[inline]
fn sread(src: &[f64], s: SSrc, t: usize, l: usize) -> f64 {
    match s {
        SSrc::Row { off, step } => src[off as usize + t * step as usize + l],
        SSrc::Const(c) => c,
    }
}

/// Splits the stripe into (everything below, destination row of `len`
/// elements). Rows are assigned in body order with operand cells
/// allocated before their consumer's row, so every source offset of an
/// op is strictly below its destination row — the split is always valid
/// and gives the chunk loops aliasing-free slices with no per-element
/// bounds checks (which is what lets LLVM vectorize them).
#[inline]
fn dst_row(stripe: &mut [f64], dst: u32, len: usize) -> (&[f64], &mut [f64]) {
    let (src, rest) = stripe.split_at_mut(dst as usize);
    (src, &mut rest[..len])
}

#[inline]
fn bin_chunk<F: Fn(f64, f64) -> f64>(
    stripe: &mut [f64],
    m: usize,
    dst: u32,
    lanes: u16,
    a: SSrc,
    b: SSrc,
    f: F,
) {
    let w = lanes as usize;
    let len = m * w;
    let (src, out) = dst_row(stripe, dst, len);
    let aligned = |s: SSrc| match s {
        SSrc::Row { step, .. } => step as usize == w,
        SSrc::Const(_) => false,
    };
    match (a, b) {
        (SSrc::Row { off: x, .. }, SSrc::Row { off: y, .. }) if aligned(a) && aligned(b) => {
            let xs = &src[x as usize..x as usize + len];
            let ys = &src[y as usize..y as usize + len];
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = f(x, y);
            }
        }
        (SSrc::Row { off: x, .. }, SSrc::Const(c)) if aligned(a) => {
            let xs = &src[x as usize..x as usize + len];
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = f(x, c);
            }
        }
        (SSrc::Const(c), SSrc::Row { off: y, .. }) if aligned(b) => {
            let ys = &src[y as usize..y as usize + len];
            for (o, &y) in out.iter_mut().zip(ys) {
                *o = f(c, y);
            }
        }
        (SSrc::Const(c1), SSrc::Const(c2)) => out.fill(f(c1, c2)),
        (a, b) => {
            // Misaligned source (a lane ref into a wider row, or a
            // lane-constant cell): per-element addressing.
            for t in 0..m {
                for l in 0..w {
                    out[t * w + l] = f(sread(src, a, t, l), sread(src, b, t, l));
                }
            }
        }
    }
}

#[inline]
fn un_chunk<F: Fn(f64) -> f64>(stripe: &mut [f64], m: usize, dst: u32, lanes: u16, a: SSrc, f: F) {
    let w = lanes as usize;
    let len = m * w;
    let (src, out) = dst_row(stripe, dst, len);
    match a {
        SSrc::Row { off: x, step } if step as usize == w => {
            let xs = &src[x as usize..x as usize + len];
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = f(x);
            }
        }
        SSrc::Row { .. } => {
            for t in 0..m {
                for l in 0..w {
                    out[t * w + l] = f(sread(src, a, t, l));
                }
            }
        }
        SSrc::Const(c) => out.fill(f(c)),
    }
}

/// Executes the recurrent tail point by point for in-chunk iterations
/// `[t0, t0 + m)`, in original body order — this *is* the sequential
/// schedule, restricted to the ops that carry the loop dependence. The
/// steady tape is valid from t = 0: before the first chunk, the
/// `prelude` seeds each k = −1 forward cell with the pre-run memory
/// value its load would have read (see [`build_steady`]).
pub(crate) fn exec_recurrent(
    steady: &[ROp],
    prelude: &[(u32, u16)],
    tab: &[AccessPlan],
    map: &[(u16, u16)],
    arena: &mut [f64],
    t0: usize,
    m: usize,
) {
    if t0 == 0 {
        for &(cell, a) in prelude {
            let (t, l) = map[a as usize];
            let p = &tab[t as usize];
            arena[cell as usize] = p
                .tile
                .get((p.base + l as isize * p.lane_stride) as usize);
        }
    }
    // The dominant steady shape after forwarding and fusion is a single
    // fused chain+store; give it a loop that keeps the carried value in
    // a register instead of bouncing it through the arena.
    if let [ROp::ChainStore {
        dst,
        init,
        links,
        base,
        delta,
        tile,
        ..
    }] = steady
    {
        if chain_store_loop(arena, *dst, *init, links, *base, *delta, *tile, t0, 0, m) {
            return;
        }
    }
    // The vf-lowered shape: one wide chain-store carrying its value
    // across lane boundaries in a register.
    if let [ROp::ChainStoreW { lanes, carry_cell }] = steady {
        chain_store_loop_w(arena, lanes, *carry_cell, t0, 0, m);
        return;
    }
    for l in 0..m {
        exec_point(steady, arena, (t0 + l) as isize, l);
    }
}

/// Register-carried loop over a fused wide chain-store: `m − l0`
/// iterations × `w` lanes of serial chain evaluation, one store each,
/// with the recurrence value never leaving a register inside the loop.
/// Entered with `arena[carry_cell]` holding the previous iteration's
/// last-lane value (written by the `first` tape or the previous chunk);
/// leaves the final value there for the next chunk.
fn chain_store_loop_w(
    arena: &mut [f64],
    lanes: &[WLane],
    carry_cell: u32,
    t0: usize,
    l0: usize,
    m: usize,
) {
    let mut carry = arena[carry_cell as usize];
    for l in l0..m {
        let t = (t0 + l) as isize;
        for lane in lanes {
            let mut acc = aread(arena, lane.init, l);
            for (j, lk) in lane.links.iter().enumerate() {
                let x = if j == lane.carry_at as usize {
                    carry
                } else {
                    aread(arena, lk.other, l)
                };
                acc = if lk.acc_rhs {
                    lk.op.apply(x, acc)
                } else {
                    lk.op.apply(acc, x)
                };
            }
            let addr = (lane.base + t * lane.delta) as usize;
            #[cfg(debug_assertions)]
            crate::buffer::overlap::note_store_raw(lane.tile.id(), addr, 1);
            lane.tile.set(addr, acc);
            carry = acc;
        }
    }
    if l0 < m {
        arena[carry_cell as usize] = carry;
    }
}

#[inline]
fn exec_point(ops: &[ROp], arena: &mut [f64], t: isize, l: usize) {
    {
        for op in ops {
            match op {
                ROp::Load {
                    dst,
                    lanes,
                    lane_stride,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    let b = base + t * delta;
                    for lane in 0..*lanes as usize {
                        arena[*dst as usize + lane] =
                            tile.get((b + lane as isize * lane_stride) as usize);
                    }
                }
                ROp::Carry { dst, src } => arena[*dst as usize] = arena[*src as usize],
                ROp::Store {
                    src,
                    lanes,
                    lane_stride,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    let b = base + t * delta;
                    for lane in 0..*lanes as usize {
                        let v = areadw(arena, *src, l, lane);
                        let addr = (b + lane as isize * lane_stride) as usize;
                        #[cfg(debug_assertions)]
                        crate::buffer::overlap::note_store_raw(tile.id(), addr, 1);
                        tile.set(addr, v);
                    }
                }
                ROp::Bin {
                    op,
                    dst,
                    lanes,
                    a,
                    b,
                } => {
                    for lane in 0..*lanes as usize {
                        arena[*dst as usize + lane] =
                            op.apply(areadw(arena, *a, l, lane), areadw(arena, *b, l, lane));
                    }
                }
                ROp::Un { op, dst, lanes, a } => {
                    for lane in 0..*lanes as usize {
                        arena[*dst as usize + lane] = op.apply(areadw(arena, *a, l, lane));
                    }
                }
                ROp::Fma {
                    dst,
                    lanes,
                    a,
                    b,
                    c,
                } => {
                    for lane in 0..*lanes as usize {
                        arena[*dst as usize + lane] = areadw(arena, *a, l, lane)
                            .mul_add(areadw(arena, *b, l, lane), areadw(arena, *c, l, lane));
                    }
                }
                ROp::Splat { dst, lanes, a } => {
                    let v = aread(arena, *a, l);
                    arena[*dst as usize..*dst as usize + *lanes as usize].fill(v);
                }
                ROp::Chain { dst, init, links } => {
                    arena[*dst as usize] = chain_eval(arena, *init, links, l);
                }
                ROp::ChainStore {
                    dst,
                    init,
                    links,
                    base,
                    delta,
                    tile,
                    ..
                } => {
                    let v = chain_eval(arena, *init, links, l);
                    arena[*dst as usize] = v;
                    let addr = (base + t * delta) as usize;
                    #[cfg(debug_assertions)]
                    crate::buffer::overlap::note_store_raw(tile.id(), addr, 1);
                    tile.set(addr, v);
                }
                ROp::ChainStoreW { lanes, .. } => {
                    // Faithful unfused semantics: each lane's carry
                    // operand reads the previous lane's dst cell, which
                    // this per-point path keeps written.
                    for lane in lanes.iter() {
                        let v = chain_eval(arena, lane.init, &lane.links, l);
                        arena[lane.dst as usize] = v;
                        let addr = (lane.base + t * lane.delta) as usize;
                        #[cfg(debug_assertions)]
                        crate::buffer::overlap::note_store_raw(lane.tile.id(), addr, 1);
                        lane.tile.set(addr, v);
                    }
                }
            }
        }
    }
}

/// How a chain operand is fetched inside [`chain_store_loop`]: the
/// register-carried recurrence value, a hoisted loop-invariant, or a
/// stripe row indexed by the in-chunk position.
#[derive(Clone, Copy)]
enum COperand {
    Carry,
    Inv(f64),
    Row(u32, u32),
}

const CHAIN_MAX: usize = 16;

#[inline]
fn coperand(r: RRef, dst: u32, arena: &[f64]) -> COperand {
    if r.step != 0 {
        COperand::Row(r.off, r.step)
    } else if r.off == dst {
        COperand::Carry
    } else {
        COperand::Inv(arena[r.off as usize])
    }
}

/// Specialized loop for a steady tape that is a single fused
/// chain+store. The recurrence value (the step-0 operand aliasing the
/// chain's own destination) lives in a register across iterations;
/// other step-0 operands are loop-invariant and read once. Applies the
/// exact same ops in the same order and operand sides as the generic
/// path, so results stay bit-identical. Returns false (nothing done)
/// when the chain is too long for the operand scratch table.
#[allow(clippy::too_many_arguments)]
fn chain_store_loop(
    arena: &mut [f64],
    dst: u32,
    init: RRef,
    links: &[ChainLink],
    base: isize,
    delta: isize,
    tile: TileView,
    t0: usize,
    l0: usize,
    m: usize,
) -> bool {
    if links.len() > CHAIN_MAX || l0 >= m {
        return l0 >= m;
    }
    let initk = coperand(init, dst, arena);
    let mut ops = [(FOp::Add, false, COperand::Carry); CHAIN_MAX];
    for (o, lk) in ops.iter_mut().zip(links) {
        *o = (lk.op, lk.acc_rhs, coperand(lk.other, dst, arena));
    }
    let ops = &ops[..links.len()];
    // Entered with arena[dst] holding the previous iteration's value
    // (written by the `first` tape or the previous chunk).
    let mut carry = arena[dst as usize];
    let mut addr = base + (t0 + l0) as isize * delta;
    for l in l0..m {
        let fetch = |k: COperand| match k {
            COperand::Carry => carry,
            COperand::Inv(c) => c,
            COperand::Row(o, step) => arena[o as usize + l * step as usize],
        };
        let mut acc = fetch(initk);
        for &(op, acc_rhs, k) in ops {
            let x = fetch(k);
            acc = if acc_rhs { op.apply(x, acc) } else { op.apply(acc, x) };
        }
        #[cfg(debug_assertions)]
        crate::buffer::overlap::note_store_raw(tile.id(), addr as usize, 1);
        tile.set(addr as usize, acc);
        carry = acc;
        addr += delta;
    }
    arena[dst as usize] = carry;
    true
}

#[inline]
fn chain_eval(arena: &[f64], init: RRef, links: &[ChainLink], l: usize) -> f64 {
    let mut acc = aread(arena, init, l);
    for lk in links {
        let x = aread(arena, lk.other, l);
        acc = if lk.acc_rhs {
            lk.op.apply(x, acc)
        } else {
            lk.op.apply(acc, x)
        };
    }
    acc
}

#[inline]
fn aread(arena: &[f64], r: RRef, l: usize) -> f64 {
    arena[r.off as usize + l * r.step as usize]
}

/// Lane-indexed arena read for wide recurrent operands: lane `lane` of
/// in-chunk iteration `l`. Step-0 sources hold their lanes in
/// consecutive cells; row sources interleave lanes within each
/// iteration's group.
#[inline]
fn areadw(arena: &[f64], r: RRef, l: usize, lane: usize) -> f64 {
    arena[r.off as usize + l * r.step as usize + lane]
}

use std::collections::{HashMap, HashSet};

use crate::bytecode::{IOp, Instr, Tape};

/// Executes a probe program. Returns `false` on any condition the
/// generic body would report as an error (division by zero, unset
/// buffer); the caller then falls back so the error surfaces from the
/// generic loop with exact accounting.
pub(crate) fn run_probe(probe: &[ProbeOp], regs: &mut crate::bytecode::Regs) -> bool {
    for op in probe {
        match *op {
            ProbeOp::CF { dst, v } => regs.f[dst as usize] = v,
            ProbeOp::CV { off, lanes, v } => {
                regs.v[off as usize..(off + lanes) as usize].fill(v)
            }
            ProbeOp::CI { dst, v } => regs.i[dst as usize] = v,
            ProbeOp::Mov { dst, src } => regs.i[dst as usize] = regs.i[src as usize],
            ProbeOp::S2F { dst, src } => regs.f[dst as usize] = regs.i[src as usize] as f64,
            ProbeOp::Dim { dst, buf, dim } => {
                let Some(b) = regs.b[buf as usize].as_ref() else {
                    return false;
                };
                regs.i[dst as usize] = b.dim(dim as usize) as i64;
            }
            ProbeOp::Bin { op, dst, a, b } => {
                let a = regs.i[a as usize];
                let b = regs.i[b as usize];
                regs.i[dst as usize] = match op {
                    IOp::Add => a + b,
                    IOp::Sub => a - b,
                    IOp::Mul => a * b,
                    IOp::FloorDiv | IOp::CeilDiv | IOp::Rem if b == 0 => return false,
                    IOp::FloorDiv => a.div_euclid(b),
                    IOp::CeilDiv => (a + b - 1).div_euclid(b),
                    IOp::Rem => a.rem_euclid(b),
                    IOp::Min => a.min(b),
                    IOp::Max => a.max(b),
                };
            }
        }
    }
    true
}

/// Backward-liveness pruning of a probe program. `seed` (plus `extra`)
/// is the set of integer registers whose final values the caller still
/// reads — the merged access table's index registers, and for the main
/// probe the upward-exposed reads of the (already pruned) `probe_iv`.
/// Dropped ops are exactly the pure integer computations whose results
/// feed only merged-away unrolled lanes:
/// - float-file writes (`CF`, `CV`, `S2F`) always stay — plan building
///   snapshots those registers on cache misses;
/// - ops the generic body could fault on (`Dim` of an unset buffer,
///   euclidean division/remainder by zero) always stay, so the probe
///   declines in exactly the situations the generic loop would error;
/// - pure `CI`/`Mov`/`Add`/`Sub`/`Mul`/`Min`/`Max` survive only while
///   some kept op still reads their destination.
fn prune_probe(code: Vec<ProbeOp>, seed: &[u32], extra: &[u32]) -> Vec<ProbeOp> {
    let mut live: HashSet<u32> = seed.iter().chain(extra).copied().collect();
    let mut kept: Vec<ProbeOp> = Vec::with_capacity(code.len());
    for op in code.iter().rev() {
        let keep = match op {
            ProbeOp::CF { .. } | ProbeOp::CV { .. } | ProbeOp::S2F { .. } | ProbeOp::Dim { .. } => {
                true
            }
            ProbeOp::CI { dst, .. } | ProbeOp::Mov { dst, .. } => live.contains(dst),
            ProbeOp::Bin { op, dst, .. } => {
                live.contains(dst) || matches!(op, IOp::FloorDiv | IOp::CeilDiv | IOp::Rem)
            }
        };
        if !keep {
            continue;
        }
        match op {
            ProbeOp::CI { dst, .. } => {
                live.remove(dst);
            }
            ProbeOp::Mov { dst, src } => {
                live.remove(dst);
                live.insert(*src);
            }
            ProbeOp::Dim { dst, .. } => {
                live.remove(dst);
            }
            ProbeOp::Bin { dst, a, b, .. } => {
                live.remove(dst);
                live.insert(*a);
                live.insert(*b);
            }
            ProbeOp::S2F { src, .. } => {
                live.insert(*src);
            }
            ProbeOp::CF { .. } | ProbeOp::CV { .. } => {}
        }
        kept.push(*op);
    }
    kept.reverse();
    kept
}

/// Integer registers a probe program reads before (or without) writing
/// — the values it expects to find in the frame when it runs.
fn probe_upward_reads(code: &[ProbeOp]) -> Vec<u32> {
    let mut defined: HashSet<u32> = HashSet::new();
    let mut reads: Vec<u32> = Vec::new();
    let read = |r: u32, defined: &HashSet<u32>, reads: &mut Vec<u32>| {
        if !defined.contains(&r) {
            reads.push(r);
        }
    };
    for op in code {
        match op {
            ProbeOp::CI { dst, .. } | ProbeOp::Dim { dst, .. } => {
                defined.insert(*dst);
            }
            ProbeOp::Mov { dst, src } => {
                read(*src, &defined, &mut reads);
                defined.insert(*dst);
            }
            ProbeOp::Bin { dst, a, b, .. } => {
                read(*a, &defined, &mut reads);
                read(*b, &defined, &mut reads);
                defined.insert(*dst);
            }
            ProbeOp::S2F { src, .. } => read(*src, &defined, &mut reads),
            ProbeOp::CF { .. } | ProbeOp::CV { .. } => {}
        }
    }
    reads
}

/// Recognizes a specializable innermost loop body and builds its
/// [`RunSpec`]. Declines — with a reason suitable for a
/// `runspec-decline` observability event — when the body uses anything
/// outside the straight-line stencil subset: nested control flow,
/// vector ops, comparisons/selects, allocation, view construction,
/// float-typed induction values, or index arithmetic that is not
/// affine in `iv`.
///
/// Affinity tracking: integer registers are *linear* (affine in `iv`)
/// or *invariant*. `iv` is linear; registers defined outside the body
/// are invariant (SSA + dominance); `addi`/`subi` preserve linearity;
/// `muli` of linear × invariant stays linear (linear × linear bails);
/// division/remainder/min/max of anything linear bails. Access index
/// registers may be either class — the probe resolves their values —
/// but linearity is what justifies probing only two iterations and
/// bounds-checking only the run endpoints.
pub(crate) fn analyze(
    tape: &Tape,
    iv: u32,
    outer_consts: &HashMap<u32, i64>,
) -> Result<RunSpec, &'static str> {
    if !tape.term.is_empty() {
        return Err("body yields loop-carried values");
    }
    // Classify nested control flow up front, whatever else the tape
    // holds: an outer tile loop clamps its bounds (min/max on the
    // induction value) *before* its nested `For` appears on the tape,
    // and blaming the clamp would misname every outer loop of a nest
    // as a non-affine-arithmetic decline.
    if tape.code.iter().any(|i| {
        matches!(
            i,
            Instr::For { .. } | Instr::If { .. } | Instr::ParallelLoop { .. } | Instr::Wavefronts { .. }
        )
    }) {
        return Err("nested control flow");
    }
    let mut probe_code: Vec<ProbeOp> = Vec::new();
    let mut probe_iv_code: Vec<ProbeOp> = Vec::new();
    let mut lin: HashSet<u32> = HashSet::new();
    lin.insert(iv);
    // Affine value numbers for the integer registers: each value is
    // `(root, offset)` — root 0 is the literal-constant root (offset is
    // the value); other roots are hash-consed over (input register |
    // dim | non-foldable op), so two registers holding the *same
    // symbolic expression plus a constant* get the same root. Folding
    // wraps, which keeps number equality a sound witness for value
    // equality without replicating the probe's overflow behavior.
    let mut vn: HashMap<u32, (u32, i64)> = HashMap::new();
    let mut vn_memo: HashMap<(u8, u32, i64, u32, i64), u32> = HashMap::new();
    let mut vn_next: u32 = 1;
    macro_rules! vn_root {
        ($key:expr) => {{
            *vn_memo.entry($key).or_insert_with(|| {
                let r = vn_next;
                vn_next += 1;
                r
            })
        }};
    }
    macro_rules! vn_of {
        ($r:expr) => {{
            let r: u32 = $r;
            match vn.get(&r) {
                Some(&v) => v,
                None => {
                    // First read of an externally-defined register. One
                    // the compiler proved to hold a dominating constant
                    // (written exactly once, by a `ConstI`) numbers as
                    // that literal — its runtime value can never differ
                    // — so hoisted lane offsets fold like in-body ones.
                    // Everything else gets a fresh opaque root.
                    let v = match outer_consts.get(&r) {
                        Some(&c) => (0u32, c),
                        None => (vn_root!((0, r, 0, 0, 0)), 0i64),
                    };
                    vn.insert(r, v);
                    v
                }
            }
        }};
    }
    // Per-access index value numbers, captured at the access site
    // (indexed like the `acc` fields).
    let mut acc_vns: Vec<Box<[(u32, i64)]>> = Vec::new();
    // f-register → the value it currently holds (op result, lane of a
    // wide op, or — absent — a run-invariant register read).
    let mut fdef: HashMap<u32, FRef> = HashMap::new();
    let fref = |r: u32, fdef: &HashMap<u32, FRef>| -> FRef {
        fdef.get(&r).copied().unwrap_or(FRef::Inv(r))
    };
    // v-file start offset → (producing op position, width); absent
    // means the vector was defined outside the body (run-invariant,
    // read from the v-file at plan time: `VInv`).
    let mut vdef: HashMap<u32, (u16, u16)> = HashMap::new();
    // Maps a vector operand to its FRef, rejecting width mismatches
    // (a wide consumer of op j's row assumes j's lane interleave).
    let vref = |r: u32, w: u16, vdef: &HashMap<u32, (u16, u16)>| -> Result<FRef, &'static str> {
        match vdef.get(&r) {
            Some(&(j, jw)) if jw == w => Ok(FRef::Op(j)),
            Some(_) => Err("mixed vector widths in body"),
            None => Ok(FRef::VInv(r)),
        }
    };
    // Redefining part of an in-body vector's range can't be expressed
    // as whole-row references; exact redefinitions just replace the
    // mapping. Returns false on partial overlap.
    let clear_vrange = |off: u32, w: u16, vdef: &mut HashMap<u32, (u16, u16)>| -> bool {
        let end = off + u32::from(w);
        let partial = vdef.iter().any(|(&k, &(_, kw))| {
            let kend = k + u32::from(kw);
            k < end && off < kend && !(k == off && kw == w)
        });
        if partial {
            return false;
        }
        vdef.remove(&off);
        true
    };
    const MAX_LANES: u32 = 64;
    let lanes16 = |lanes: u32| -> Result<u16, &'static str> {
        if lanes == 0 || lanes > MAX_LANES {
            return Err("vector width exceeds the lane budget");
        }
        Ok(lanes as u16)
    };
    let mut ops: Vec<RunOp> = Vec::new();
    let mut n_acc: u16 = 0;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut flops = 0u64;
    let mut index_ops = 0u64;
    let mut vloads = 0u64;
    let mut vstores = 0u64;
    let mut vflops = 0u64;

    for instr in &tape.code {
        if ops.len() >= u16::MAX as usize || n_acc == u16::MAX {
            return Err("op count exceeds the u16 stream budget");
        }
        match instr {
            Instr::ConstF { dst, v } => probe_code.push(ProbeOp::CF { dst: *dst, v: *v }),
            Instr::ConstI { dst, v } => {
                vn.insert(*dst, (0, *v));
                probe_code.push(ProbeOp::CI { dst: *dst, v: *v });
            }
            Instr::Dim { dst, buf, dim } => {
                let root = vn_root!((1, *buf, *dim as i64, 0, 0));
                vn.insert(*dst, (root, 0));
                probe_code.push(ProbeOp::Dim {
                    dst: *dst,
                    buf: *buf,
                    dim: *dim,
                });
            }
            Instr::MoveI { dst, src } => {
                let v = vn_of!(*src);
                vn.insert(*dst, v);
                let p = ProbeOp::Mov {
                    dst: *dst,
                    src: *src,
                };
                if lin.contains(src) {
                    lin.insert(*dst);
                    probe_iv_code.push(p);
                }
                probe_code.push(p);
            }
            Instr::SiToFp { dst, src } => {
                if lin.contains(src) {
                    // A float that varies per point without going through
                    // memory — outside the stencil subset.
                    return Err("per-point int-to-float conversion");
                }
                probe_code.push(ProbeOp::S2F {
                    dst: *dst,
                    src: *src,
                });
            }
            Instr::BinI { op, dst, a, b } => {
                index_ops += 1;
                let va = vn_of!(*a);
                let vb = vn_of!(*b);
                let dv = match (op, va, vb) {
                    (IOp::Add, (0, x), (0, y)) => (0, x.wrapping_add(y)),
                    (IOp::Add, (r, o), (0, c)) | (IOp::Add, (0, c), (r, o)) => {
                        (r, o.wrapping_add(c))
                    }
                    (IOp::Sub, (0, x), (0, y)) => (0, x.wrapping_sub(y)),
                    (IOp::Sub, (r, o), (0, c)) => (r, o.wrapping_sub(c)),
                    (IOp::Mul, (0, x), (0, y)) => (0, x.wrapping_mul(y)),
                    _ => (vn_root!((2 + *op as u8, va.0, va.1, vb.0, vb.1)), 0),
                };
                vn.insert(*dst, dv);
                let la = lin.contains(a);
                let lb = lin.contains(b);
                let dst_linear = match op {
                    IOp::Add | IOp::Sub => la || lb,
                    IOp::Mul => {
                        if la && lb {
                            return Err("index arithmetic quadratic in the induction value");
                        }
                        la || lb
                    }
                    IOp::FloorDiv | IOp::CeilDiv | IOp::Rem | IOp::Min | IOp::Max => {
                        if la || lb {
                            return Err("non-affine index arithmetic on the induction value");
                        }
                        false
                    }
                };
                let p = ProbeOp::Bin {
                    op: *op,
                    dst: *dst,
                    a: *a,
                    b: *b,
                };
                if dst_linear {
                    lin.insert(*dst);
                    probe_iv_code.push(p);
                }
                probe_code.push(p);
            }
            Instr::BinF { op, dst, a, b } => {
                flops += 1;
                let rop = RunOp::Bin {
                    op: *op,
                    a: fref(*a, &fdef),
                    b: fref(*b, &fdef),
                    lanes: 1,
                };
                fdef.insert(*dst, FRef::Op(ops.len() as u16));
                ops.push(rop);
            }
            Instr::UnF { op, dst, a } => {
                flops += 1;
                let rop = RunOp::Un {
                    op: *op,
                    a: fref(*a, &fdef),
                    lanes: 1,
                };
                fdef.insert(*dst, FRef::Op(ops.len() as u16));
                ops.push(rop);
            }
            Instr::FmaF { dst, a, b, c } => {
                flops += 1;
                let rop = RunOp::Fma {
                    a: fref(*a, &fdef),
                    b: fref(*b, &fdef),
                    c: fref(*c, &fdef),
                    lanes: 1,
                };
                fdef.insert(*dst, FRef::Op(ops.len() as u16));
                ops.push(rop);
            }
            Instr::Load { dst, buf, idx } => {
                loads += 1;
                acc_vns.push(idx.iter().map(|&r| vn_of!(r)).collect());
                let rop = RunOp::Load {
                    buf: *buf,
                    idx: idx.clone(),
                    acc: n_acc,
                    lanes: 1,
                };
                n_acc += 1;
                fdef.insert(*dst, FRef::Op(ops.len() as u16));
                ops.push(rop);
            }
            Instr::Store { src, buf, idx } => {
                stores += 1;
                acc_vns.push(idx.iter().map(|&r| vn_of!(r)).collect());
                ops.push(RunOp::Store {
                    buf: *buf,
                    idx: idx.clone(),
                    src: fref(*src, &fdef),
                    acc: n_acc,
                    lanes: 1,
                });
                n_acc += 1;
            }
            // Vector IR (the §2.4 partial-vectorization shape): vector
            // instructions become *wide* run ops over lane-interleaved
            // stripe rows. Stats counters mirror the generic engine:
            // one count per vector instruction, not per lane; extracts,
            // broadcasts, and constants count nothing.
            Instr::ConstV { off, lanes, v } => {
                if !clear_vrange(*off, lanes16(*lanes)?, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                // Same literal every iteration — hoisted to probe time,
                // after which the v-file read (`VInv`) sees it.
                probe_code.push(ProbeOp::CV {
                    off: *off,
                    lanes: *lanes,
                    v: *v,
                });
            }
            Instr::BinV { op, dst, a, b, lanes } => {
                vflops += 1;
                let w = lanes16(*lanes)?;
                let rop = RunOp::Bin {
                    op: *op,
                    a: vref(*a, w, &vdef)?,
                    b: vref(*b, w, &vdef)?,
                    lanes: w,
                };
                if !clear_vrange(*dst, w, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                vdef.insert(*dst, (ops.len() as u16, w));
                ops.push(rop);
            }
            Instr::UnV { op, dst, a, lanes } => {
                vflops += 1;
                let w = lanes16(*lanes)?;
                let rop = RunOp::Un {
                    op: *op,
                    a: vref(*a, w, &vdef)?,
                    lanes: w,
                };
                if !clear_vrange(*dst, w, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                vdef.insert(*dst, (ops.len() as u16, w));
                ops.push(rop);
            }
            Instr::FmaV { dst, a, b, c, lanes } => {
                vflops += 1;
                let w = lanes16(*lanes)?;
                let rop = RunOp::Fma {
                    a: vref(*a, w, &vdef)?,
                    b: vref(*b, w, &vdef)?,
                    c: vref(*c, w, &vdef)?,
                    lanes: w,
                };
                if !clear_vrange(*dst, w, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                vdef.insert(*dst, (ops.len() as u16, w));
                ops.push(rop);
            }
            Instr::VLoad { dst, lanes, buf, idx } => {
                vloads += 1;
                acc_vns.push(idx.iter().map(|&r| vn_of!(r)).collect());
                let w = lanes16(*lanes)?;
                let rop = RunOp::Load {
                    buf: *buf,
                    idx: idx.clone(),
                    acc: n_acc,
                    lanes: w,
                };
                n_acc += 1;
                if !clear_vrange(*dst, w, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                vdef.insert(*dst, (ops.len() as u16, w));
                ops.push(rop);
            }
            Instr::VStore { src, lanes, buf, idx } => {
                vstores += 1;
                acc_vns.push(idx.iter().map(|&r| vn_of!(r)).collect());
                let w = lanes16(*lanes)?;
                ops.push(RunOp::Store {
                    buf: *buf,
                    idx: idx.clone(),
                    src: vref(*src, w, &vdef)?,
                    acc: n_acc,
                    lanes: w,
                });
                n_acc += 1;
            }
            Instr::VExtract { dst, src, lane } => {
                // Pure data movement, folded into the consumer's
                // operand: lane of an in-body wide op, or a v-file cell.
                let cell = *src + *lane;
                let r = match vdef
                    .iter()
                    .find(|(&k, &(_, kw))| cell >= k && cell < k + u32::from(kw))
                {
                    Some((&k, &(j, _))) => FRef::Lane(j, (cell - k) as u16),
                    None => FRef::VInv(cell),
                };
                fdef.insert(*dst, r);
            }
            Instr::VBroadcast { dst, lanes, src } => {
                let w = lanes16(*lanes)?;
                let rop = RunOp::Splat {
                    a: fref(*src, &fdef),
                    lanes: w,
                };
                if !clear_vrange(*dst, w, &mut vdef) {
                    return Err("partial vector redefinition in body");
                }
                vdef.insert(*dst, (ops.len() as u16, w));
                ops.push(rop);
            }
            Instr::SelV { .. } => return Err("vector select in body"),
            Instr::For { .. }
            | Instr::If { .. }
            | Instr::ParallelLoop { .. }
            | Instr::Wavefronts { .. } => return Err("nested control flow"),
            Instr::CmpI { .. } | Instr::CmpF { .. } | Instr::SelF { .. } | Instr::SelI { .. } => {
                return Err("compare/select in body")
            }
            Instr::Call { .. } => return Err("call in body"),
            Instr::Alloc { .. }
            | Instr::Subview { .. }
            | Instr::ShiftView { .. }
            | Instr::CopyBuf { .. }
            | Instr::GetParallelBlocks { .. } => {
                return Err("allocation or view construction in body")
            }
        }
    }
    if stores == 0 {
        return Err("no stores in body");
    }
    // Dead-code elimination. Lane-unrolled vector bodies leave dead
    // ops behind analysis — per-lane serial contributions folded into
    // extracts of *other* positions, and vector-side arithmetic feeding
    // nothing that survives. A dead op costs arena writes every
    // iteration on whichever path it lands, so strip pure float ops no
    // kept op references (loads and stores always stay: their bounds
    // and error semantics are observable; the per-iter stat counters
    // above were accumulated from the original instruction mix and are
    // unaffected). References point strictly backwards, so one reverse
    // pass reaches the fixpoint.
    let mut used = vec![false; ops.len()];
    for i in (0..ops.len()).rev() {
        if !used[i] && !matches!(ops[i], RunOp::Load { .. } | RunOp::Store { .. }) {
            continue;
        }
        let mut mark = |r: &FRef| {
            if let FRef::Op(j) | FRef::Lane(j, _) = r {
                used[*j as usize] = true;
            }
        };
        match &ops[i] {
            RunOp::Bin { a, b, .. } => {
                mark(a);
                mark(b);
            }
            RunOp::Un { a, .. } | RunOp::Splat { a, .. } => mark(a),
            RunOp::Fma { a, b, c, .. } => {
                mark(a);
                mark(b);
                mark(c);
            }
            RunOp::Store { src, .. } => mark(src),
            RunOp::Load { .. } => {}
        }
    }
    let mut remap = vec![u16::MAX; ops.len()];
    let mut kept: Vec<RunOp> = Vec::with_capacity(ops.len());
    for (i, op) in ops.into_iter().enumerate() {
        if used[i] || matches!(op, RunOp::Load { .. } | RunOp::Store { .. }) {
            remap[i] = kept.len() as u16;
            kept.push(op);
        }
    }
    for op in &mut kept {
        let fix = |r: &mut FRef| {
            if let FRef::Op(j) | FRef::Lane(j, _) = r {
                *j = remap[*j as usize];
            }
        };
        match op {
            RunOp::Bin { a, b, .. } => {
                fix(a);
                fix(b);
            }
            RunOp::Un { a, .. } | RunOp::Splat { a, .. } => fix(a),
            RunOp::Fma { a, b, c, .. } => {
                fix(a);
                fix(b);
                fix(c);
            }
            RunOp::Store { src, .. } => fix(src),
            RunOp::Load { .. } => {}
        }
    }
    let ops = kept;
    // Merged access table. Accesses in body order (DCE keeps every
    // load/store, so the k-th access op has `acc == k`); group the ones
    // whose index value numbers agree on every dimension except a
    // constant last-dimension offset, then split each group into
    // maximal chains of consecutive offsets — one table entry per
    // chain, each member addressed as `(entry, lane)`.
    struct AccGroup {
        buf: u32,
        w: u16,
        store: bool,
        key: Vec<(u32, i64)>,
        last_root: u32,
        members: Vec<(i64, usize)>,
    }
    let accesses: Vec<(u32, u16, bool, &[u32])> = ops
        .iter()
        .filter_map(|op| match op {
            RunOp::Load { buf, idx, lanes, .. } => Some((*buf, *lanes, false, &idx[..])),
            RunOp::Store { buf, idx, lanes, .. } => Some((*buf, *lanes, true, &idx[..])),
            _ => None,
        })
        .collect();
    debug_assert_eq!(accesses.len(), acc_vns.len());
    let mut groups: Vec<AccGroup> = Vec::new();
    for (a, &(buf, w, store, _)) in accesses.iter().enumerate() {
        let vns = &acc_vns[a];
        if vns.is_empty() {
            // Rank-0 access: no lane dimension to merge along.
            groups.push(AccGroup {
                buf,
                w,
                store,
                key: Vec::new(),
                last_root: u32::MAX,
                members: vec![(0, a)],
            });
            continue;
        }
        let (last_root, last_off) = vns[vns.len() - 1];
        let prefix = &vns[..vns.len() - 1];
        match groups.iter_mut().find(|g| {
            g.buf == buf
                && g.w == w
                && g.store == store
                && g.last_root == last_root
                && g.last_root != u32::MAX
                && g.key == prefix
        }) {
            Some(g) => g.members.push((last_off, a)),
            None => groups.push(AccGroup {
                buf,
                w,
                store,
                key: prefix.to_vec(),
                last_root,
                members: vec![(last_off, a)],
            }),
        }
    }
    let mut accs: Vec<SpecAccess> = Vec::new();
    let mut acc_map: Vec<(u16, u16)> = vec![(0, 0); accesses.len()];
    for g in &mut groups {
        g.members.sort_by_key(|&(off, _)| off);
        let w = g.w as i64;
        let mut i = 0;
        while i < g.members.len() {
            let start = g.members[i].0;
            let mut hi = start;
            let mut j = i;
            while j + 1 < g.members.len() {
                let next = g.members[j + 1].0;
                if (next == hi || next == hi + w) && next - start + w <= u16::MAX as i64 {
                    hi = next;
                    j += 1;
                } else {
                    break;
                }
            }
            let entry = accs.len() as u16;
            // Lane-0 member carries the entry's index registers.
            let lane0 = g.members[i..=j].iter().find(|&&(off, _)| off == start).unwrap().1;
            accs.push(SpecAccess {
                buf: g.buf,
                idx: accesses[lane0].3.to_vec().into(),
                lanes: (hi - start + w) as u16,
                store: g.store,
            });
            for &(off, a) in &g.members[i..=j] {
                acc_map[a] = (entry, (off - start) as u16);
            }
            i = j + 1;
        }
    }
    let idx_regs: Vec<u32> = accs.iter().flat_map(|a| a.idx.iter().copied()).collect();
    // Prune the probe programs down to what still matters after the
    // merge: the table entries' index registers (plus what kept ops
    // read). Integer ops that can fail at run time (divisions, dims)
    // stay regardless — the probe must decline exactly when the generic
    // body would error — as do all float-file writes, which plan
    // building snapshots on cache misses.
    let probe_iv_code = prune_probe(probe_iv_code, &idx_regs, &[]);
    let iv_inputs: Vec<u32> = probe_upward_reads(&probe_iv_code);
    let probe_code = prune_probe(probe_code, &idx_regs, &iv_inputs);
    Ok(RunSpec {
        probe: probe_code.into(),
        probe_iv: probe_iv_code.into(),
        ops: ops.into(),
        accs: accs.into(),
        acc_map: acc_map.into(),
        idx_regs: idx_regs.into(),
        loads_per_iter: loads,
        stores_per_iter: stores,
        flops_per_iter: flops,
        index_ops_per_iter: index_ops,
        vloads_per_iter: vloads,
        vstores_per_iter: vstores,
        vflops_per_iter: vflops,
    })
}

/// Diagnostic phase timing for `exec_run`, gated by the
/// `INSTENCIL_RUNSPEC_TIMING` environment variable. Disabled it costs
/// one cached bool load per run; enabled it accumulates probe/plan/exec
/// wall time in process-wide atomics that [`phase_timing::drain`]
/// returns and resets (printed by the `runspec_phases` example between
/// measurements).
pub mod phase_timing {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    static ENABLED: OnceLock<bool> = OnceLock::new();
    static PROBE_NS: AtomicU64 = AtomicU64::new(0);
    static PLAN_NS: AtomicU64 = AtomicU64::new(0);
    static EXEC_NS: AtomicU64 = AtomicU64::new(0);
    static RUNS: AtomicU64 = AtomicU64::new(0);
    static POINTS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static MISS_NS: AtomicU64 = AtomicU64::new(0);

    pub fn enabled() -> bool {
        *ENABLED.get_or_init(|| std::env::var_os("INSTENCIL_RUNSPEC_TIMING").is_some())
    }

    pub fn record(probe: Duration, plan: Duration, exec: Duration, n: usize) {
        PROBE_NS.fetch_add(probe.as_nanos() as u64, Ordering::Relaxed);
        PLAN_NS.fetch_add(plan.as_nanos() as u64, Ordering::Relaxed);
        EXEC_NS.fetch_add(exec.as_nanos() as u64, Ordering::Relaxed);
        RUNS.fetch_add(1, Ordering::Relaxed);
        POINTS.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_miss_ns(d: std::time::Duration) {
        MISS_NS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_miss() {
        if enabled() {
            MISSES.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains the accumulated counters, returning `(probe_ns,
    /// plan_ns, exec_ns, runs, points, plan_misses, miss_ns)`.
    pub fn drain() -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            PROBE_NS.swap(0, Ordering::Relaxed),
            PLAN_NS.swap(0, Ordering::Relaxed),
            EXEC_NS.swap(0, Ordering::Relaxed),
            RUNS.swap(0, Ordering::Relaxed),
            POINTS.swap(0, Ordering::Relaxed),
            MISSES.swap(0, Ordering::Relaxed),
            MISS_NS.swap(0, Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stripe-kernel extension admits the vectorizer's lowered loop
    /// shape — broadcasts, aligned vector loads, lane-wise FMAs, a
    /// lane-unrolled recurrence — not *every* vector body. Lane-wise
    /// select has no macro-op, so `analyze` must still decline it, with
    /// the reason the compiler reports in its once-per-compile
    /// `runspec-decline` event.
    #[test]
    fn vector_select_still_declines() {
        let tape = Tape {
            code: vec![Instr::SelV {
                dst: 0,
                cond: 0,
                t: 0,
                e: 0,
                lanes: 4,
            }],
            term: vec![],
        };
        assert_eq!(
            analyze(&tape, 0, &HashMap::new()).err(),
            Some("vector select in body")
        );
    }

    /// Loop-invariant registers that the surrounding function loads
    /// with `ConstI` are folded to literal value numbers, which is what
    /// lets the vectorizer's per-lane `base + k` indices land in one
    /// merged access-table entry. The fold must only apply to registers
    /// the caller vouches for: an unknown register stays symbolic and
    /// the two bodies below must therefore disagree about whether their
    /// access indices coincide.
    #[test]
    fn outer_constants_fold_into_access_indices() {
        // for i { store f0 -> buf0[i + r1] } with r1 = 3 outside the
        // body; register 2 holds the address index, register 0 is `i`.
        let body = |k: u32| Tape {
            code: vec![
                Instr::BinI {
                    op: IOp::Add,
                    dst: 2,
                    a: 0,
                    b: k,
                },
                Instr::Store {
                    src: 0,
                    buf: 0,
                    idx: vec![2].into(),
                },
            ],
            term: vec![],
        };
        let consts = HashMap::from([(1u32, 3i64)]);
        let folded = analyze(&body(1), 0, &consts).expect("affine body specializes");
        let symbolic = analyze(&body(1), 0, &HashMap::new()).expect("still affine unfolded");
        // Same single access either way — the fold changes the value
        // numbers, not the admissibility of a one-store body.
        assert_eq!(folded.accs.len(), 1);
        assert_eq!(symbolic.accs.len(), 1);
    }
}
