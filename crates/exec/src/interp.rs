//! The IR interpreter.
//!
//! Executes bufferized modules at two levels:
//!
//! * **Reference level** — structured `cfd` ops (`cfd.stencil`,
//!   `cfd.face_iterator`, `linalg.pointwise`) are executed directly from
//!   their Eq. (2) semantics. This is the oracle the lowered pipelines are
//!   validated against.
//! * **Lowered level** — `scf` loops, `arith`/`math`/`vector` ops and
//!   memref accesses, including `scf.execute_wavefronts` /
//!   `cfd.get_parallel_blocks` (the wavefront schedule is computed at run
//!   time, as in the paper, and executed level by level).
//!
//! The interpreter is split into a read-only compiled view ([`ExecCtx`]:
//! the module plus a [`WavefrontPool`]) and per-thread execution frames
//! ([`Frame`]: the dynamic statistics). With
//! [`Interpreter::with_threads`] `> 1`, `scf.execute_wavefronts` runs
//! each wavefront level across real OS threads through the pool —
//! "a sequential for loop iterating over groups that contains a parallel
//! for loop" (paper §3.4). The Eq. (3) schedule guarantees sub-domains
//! within a level are independent, so parallel execution is bit-identical
//! to sequential execution; each worker accumulates a private `Frame`
//! that the coordinator merges, so statistics are thread-count-invariant
//! too (levels are counted once by the coordinator).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use instencil_core::attrs::attr_to_pattern;
use instencil_core::ops::RegionLayout;
use instencil_obs::Obs;
use instencil_ir::body::ValueDef;
use instencil_ir::{Attribute, Body, Module, OpCode, OpId, RegionId, Type, ValueId};
use instencil_pattern::dataflow::{self, Scheduler};
use instencil_pattern::{blockdeps, CsrWavefronts, Sweep};

use crate::buffer::BufferView;
use crate::parallel::WavefrontPool;
use crate::stats::ExecStats;
use crate::value::RtVal;

/// An interpretation failure.
#[derive(Debug, Clone)]
pub struct ExecError {
    /// Description of the failure.
    pub message: String,
}

impl ExecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution failed: {}", self.message)
    }
}

impl Error for ExecError {}

type Env = Vec<Option<RtVal>>;

/// Per-thread mutable execution state: one frame per wavefront worker
/// (and one for the coordinating thread).
#[derive(Debug, Default)]
struct Frame {
    stats: ExecStats,
}

/// The interpreter: owns execution statistics across calls and the
/// thread-count knob for wavefront execution.
#[derive(Debug)]
pub struct Interpreter {
    /// Accumulated dynamic statistics.
    pub stats: ExecStats,
    threads: usize,
    obs: Obs,
    scheduler: Scheduler,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates a sequential interpreter with zeroed statistics.
    pub fn new() -> Self {
        Self::with_threads(1)
    }

    /// Creates an interpreter that executes `scf.execute_wavefronts`
    /// levels across `threads` OS threads (minimum 1). Results are
    /// bit-identical to the sequential interpreter for any thread count:
    /// the Eq. (3) schedule makes sub-domains within a level write
    /// disjoint regions.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_obs(threads, Obs::off())
    }

    /// Like [`Interpreter::with_threads`], but recording wavefront-level
    /// and schedule timings into `obs`.
    pub fn with_obs(threads: usize, obs: Obs) -> Self {
        Self::with_opts(threads, obs, Scheduler::Levels)
    }

    /// Full-knob constructor: thread count, observability, and wavefront
    /// scheduler mode. [`Scheduler::Dataflow`] executes the block
    /// dependence graph point-to-point (bit-identical to levels).
    pub fn with_opts(threads: usize, obs: Obs, scheduler: Scheduler) -> Self {
        Interpreter {
            stats: ExecStats::default(),
            threads: threads.max(1),
            obs,
            scheduler,
        }
    }

    /// The wavefront worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wavefront scheduler mode.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Calls a function of `module` by name.
    ///
    /// # Errors
    /// Fails when the function is missing, arity mismatches, or an op is
    /// not executable.
    pub fn call(
        &mut self,
        module: &Module,
        name: &str,
        args: Vec<RtVal>,
    ) -> Result<Vec<RtVal>, ExecError> {
        let ctx = ExecCtx {
            module,
            pool: WavefrontPool::with_opts(self.threads, self.obs.clone(), self.scheduler),
        };
        let mut frame = Frame::default();
        let out = ctx.call(name, args, &mut frame);
        // Merge even on error so partially executed work is accounted.
        self.stats.merge(&frame.stats);
        out
    }
}

/// Read-only compiled view shared by all threads: the module under
/// execution plus the pool that runs wavefront levels.
struct ExecCtx<'m> {
    module: &'m Module,
    pool: WavefrontPool,
}

impl ExecCtx<'_> {
    fn call(&self, name: &str, args: Vec<RtVal>, frame: &mut Frame) -> Result<Vec<RtVal>, ExecError> {
        let func = self
            .module
            .lookup(name)
            .ok_or_else(|| ExecError::new(format!("no function `{name}`")))?;
        if args.len() != func.arg_types.len() {
            return Err(ExecError::new(format!(
                "`{name}` expects {} args, got {}",
                func.arg_types.len(),
                args.len()
            )));
        }
        let body = &func.body;
        let mut env: Env = vec![None; body.num_values()];
        let entry = body.entry_block();
        self.exec_block(body, entry, &args, &mut env, frame)
    }

    /// Executes the ops of `block` with `args` bound to its block
    /// arguments; returns the terminator's operand values.
    fn exec_block(
        &self,
        body: &Body,
        block: instencil_ir::BlockId,
        args: &[RtVal],
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<Vec<RtVal>, ExecError> {
        let block_args = &body.block(block).args;
        if block_args.len() != args.len() {
            return Err(ExecError::new(format!(
                "block expects {} args, got {}",
                block_args.len(),
                args.len()
            )));
        }
        for (a, v) in block_args.iter().zip(args.iter()) {
            env[a.index()] = Some(v.clone());
        }
        for &op in &body.block(block).ops {
            if body.op(op).opcode.is_terminator() {
                return body
                    .op(op)
                    .operands
                    .iter()
                    .map(|v| self.value(env, *v))
                    .collect::<Result<Vec<_>, _>>();
            }
            self.exec_op(body, op, env, frame)?;
        }
        Ok(Vec::new())
    }

    fn eval_region(
        &self,
        body: &Body,
        region: RegionId,
        args: &[RtVal],
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<Vec<RtVal>, ExecError> {
        let block = body.region(region).blocks[0];
        self.exec_block(body, block, args, env, frame)
    }

    fn value(&self, env: &Env, v: ValueId) -> Result<RtVal, ExecError> {
        env[v.index()]
            .clone()
            .ok_or_else(|| ExecError::new(format!("use of unset value {v}")))
    }

    fn f(&self, env: &Env, v: ValueId) -> Result<f64, ExecError> {
        match self.value(env, v)? {
            RtVal::F64(x) => Ok(x),
            other => Err(ExecError::new(format!("expected f64, got {other:?}"))),
        }
    }

    fn int(&self, env: &Env, v: ValueId) -> Result<i64, ExecError> {
        match self.value(env, v)? {
            RtVal::Int(x) => Ok(x),
            other => Err(ExecError::new(format!("expected int, got {other:?}"))),
        }
    }

    fn buf(&self, env: &Env, v: ValueId) -> Result<BufferView, ExecError> {
        match self.value(env, v)? {
            RtVal::Buf(b) => Ok(b),
            other => Err(ExecError::new(format!("expected buffer, got {other:?}"))),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_op(
        &self,
        body: &Body,
        op_id: OpId,
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<(), ExecError> {
        let op = body.op(op_id);
        let set = |env: &mut Env, results: &[ValueId], vals: Vec<RtVal>| {
            for (r, v) in results.iter().zip(vals) {
                env[r.index()] = Some(v);
            }
        };
        match &op.opcode {
            OpCode::Constant => {
                let value = op
                    .attrs
                    .get("value")
                    .ok_or_else(|| ExecError::new("missing value"))?;
                let ty = body.value_type(op.results[0]);
                let v = match (ty, value) {
                    (Type::F64 | Type::F32, Attribute::Float(f)) => RtVal::F64(*f),
                    (Type::I64 | Type::Index, Attribute::Int(i)) => RtVal::Int(*i),
                    (Type::I1, Attribute::Bool(b)) => RtVal::Bool(*b),
                    (Type::Vector { len, .. }, Attribute::Float(f)) => RtVal::Vec(vec![*f; *len]),
                    _ => return Err(ExecError::new("bad constant")),
                };
                env[op.results[0].index()] = Some(v);
            }
            OpCode::AddF
            | OpCode::SubF
            | OpCode::MulF
            | OpCode::DivF
            | OpCode::MaxF
            | OpCode::MinF
            | OpCode::PowF => {
                let a = self.value(env, op.operands[0])?;
                let b = self.value(env, op.operands[1])?;
                let g = |x: f64, y: f64| match op.opcode {
                    OpCode::AddF => x + y,
                    OpCode::SubF => x - y,
                    OpCode::MulF => x * y,
                    OpCode::DivF => x / y,
                    OpCode::MaxF => x.max(y),
                    OpCode::MinF => x.min(y),
                    OpCode::PowF => x.powf(y),
                    _ => unreachable!(),
                };
                let out = match (a, b) {
                    (RtVal::F64(x), RtVal::F64(y)) => {
                        frame.stats.scalar_flops += 1;
                        RtVal::F64(g(x, y))
                    }
                    (RtVal::Vec(x), RtVal::Vec(y)) => {
                        frame.stats.vector_flops += 1;
                        RtVal::Vec(x.iter().zip(y).map(|(p, q)| g(*p, q)).collect())
                    }
                    _ => return Err(ExecError::new("mixed scalar/vector arithmetic")),
                };
                env[op.results[0].index()] = Some(out);
            }
            OpCode::NegF | OpCode::Sqrt | OpCode::AbsF | OpCode::Exp => {
                let g = |x: f64| match op.opcode {
                    OpCode::NegF => -x,
                    OpCode::Sqrt => x.sqrt(),
                    OpCode::AbsF => x.abs(),
                    OpCode::Exp => x.exp(),
                    _ => unreachable!(),
                };
                let out = match self.value(env, op.operands[0])? {
                    RtVal::F64(x) => {
                        frame.stats.scalar_flops += 1;
                        RtVal::F64(g(x))
                    }
                    RtVal::Vec(x) => {
                        frame.stats.vector_flops += 1;
                        RtVal::Vec(x.iter().map(|p| g(*p)).collect())
                    }
                    other => return Err(ExecError::new(format!("bad unary operand {other:?}"))),
                };
                env[op.results[0].index()] = Some(out);
            }
            OpCode::Fma => {
                let a = self.value(env, op.operands[0])?;
                let b = self.value(env, op.operands[1])?;
                let c = self.value(env, op.operands[2])?;
                let out = match (a, b, c) {
                    (RtVal::F64(x), RtVal::F64(y), RtVal::F64(z)) => {
                        frame.stats.scalar_flops += 1;
                        RtVal::F64(x.mul_add(y, z))
                    }
                    (RtVal::Vec(x), RtVal::Vec(y), RtVal::Vec(z)) => {
                        frame.stats.vector_flops += 1;
                        RtVal::Vec(
                            x.iter()
                                .zip(y.iter())
                                .zip(z.iter())
                                .map(|((p, q), r)| p.mul_add(*q, *r))
                                .collect(),
                        )
                    }
                    _ => return Err(ExecError::new("mixed fma operands")),
                };
                env[op.results[0].index()] = Some(out);
            }
            OpCode::AddI
            | OpCode::SubI
            | OpCode::MulI
            | OpCode::FloorDivSI
            | OpCode::CeilDivSI
            | OpCode::RemSI
            | OpCode::MinSI
            | OpCode::MaxSI => {
                let a = self.int(env, op.operands[0])?;
                let b = self.int(env, op.operands[1])?;
                frame.stats.index_ops += 1;
                let out = match op.opcode {
                    OpCode::AddI => a + b,
                    OpCode::SubI => a - b,
                    OpCode::MulI => a * b,
                    OpCode::FloorDivSI => {
                        if b == 0 {
                            return Err(ExecError::new("division by zero"));
                        }
                        a.div_euclid(b)
                    }
                    OpCode::CeilDivSI => {
                        if b == 0 {
                            return Err(ExecError::new("division by zero"));
                        }
                        (a + b - 1).div_euclid(b)
                    }
                    OpCode::RemSI => {
                        if b == 0 {
                            return Err(ExecError::new("remainder by zero"));
                        }
                        a.rem_euclid(b)
                    }
                    OpCode::MinSI => a.min(b),
                    OpCode::MaxSI => a.max(b),
                    _ => unreachable!(),
                };
                env[op.results[0].index()] = Some(RtVal::Int(out));
            }
            OpCode::CmpI(p) => {
                let a = self.int(env, op.operands[0])?;
                let b = self.int(env, op.operands[1])?;
                env[op.results[0].index()] = Some(RtVal::Bool(p.eval_int(a, b)));
            }
            OpCode::CmpF(p) => {
                let a = self.f(env, op.operands[0])?;
                let b = self.f(env, op.operands[1])?;
                env[op.results[0].index()] = Some(RtVal::Bool(p.eval_float(a, b)));
            }
            OpCode::Select => {
                let c = match self.value(env, op.operands[0])? {
                    RtVal::Bool(b) => b,
                    other => return Err(ExecError::new(format!("select cond {other:?}"))),
                };
                let v = self.value(env, op.operands[if c { 1 } else { 2 }])?;
                env[op.results[0].index()] = Some(v);
            }
            OpCode::IndexCast => {
                let v = self.int(env, op.operands[0])?;
                env[op.results[0].index()] = Some(RtVal::Int(v));
            }
            OpCode::SiToFp => {
                let v = self.int(env, op.operands[0])?;
                env[op.results[0].index()] = Some(RtVal::F64(v as f64));
            }
            OpCode::For => {
                let lb = self.int(env, op.operands[0])?;
                let ub = self.int(env, op.operands[1])?;
                let step = self.int(env, op.operands[2])?;
                if step <= 0 {
                    return Err(ExecError::new("scf.for requires a positive step"));
                }
                let mut iters: Vec<RtVal> = op.operands[3..]
                    .iter()
                    .map(|v| self.value(env, *v))
                    .collect::<Result<_, _>>()?;
                let mut iv = lb;
                while iv < ub {
                    let mut args = vec![RtVal::Int(iv)];
                    args.extend(iters.iter().cloned());
                    iters = self.eval_region(body, op.regions[0], &args, env, frame)?;
                    iv += step;
                }
                set(env, &op.results, iters);
            }
            OpCode::If => {
                let c = match self.value(env, op.operands[0])? {
                    RtVal::Bool(b) => b,
                    other => return Err(ExecError::new(format!("if cond {other:?}"))),
                };
                let region = op.regions[if c { 0 } else { 1 }];
                let vals = self.eval_region(body, region, &[], env, frame)?;
                set(env, &op.results, vals);
            }
            OpCode::Parallel => {
                let lb = self.int(env, op.operands[0])?;
                let ub = self.int(env, op.operands[1])?;
                let step = self.int(env, op.operands[2])?;
                if step <= 0 {
                    return Err(ExecError::new("scf.parallel requires a positive step"));
                }
                let mut iv = lb;
                while iv < ub {
                    self.eval_region(body, op.regions[0], &[RtVal::Int(iv)], env, frame)?;
                    iv += step;
                }
            }
            OpCode::ExecuteWavefronts => {
                let rows = match self.value(env, op.operands[0])? {
                    RtVal::I64Arr(a) => a,
                    other => return Err(ExecError::new(format!("rows {other:?}"))),
                };
                let cols = match self.value(env, op.operands[1])? {
                    RtVal::I64Arr(a) => a,
                    other => return Err(ExecError::new(format!("cols {other:?}"))),
                };
                // Dataflow execution needs the block dependence graph,
                // recovered by Arc identity from the transport `cols`
                // produced by `cfd.get_parallel_blocks` (see
                // `instencil_pattern::dataflow::lookup_by_cols`). A miss
                // (cols not minted by the bundle cache) falls back to
                // level execution and says so in the obs event stream.
                // Taken at one thread too — the inline dataflow sweep
                // skips the CSR level indirection entirely.
                let bundle = if self.pool.scheduler() == Scheduler::Dataflow {
                    let hit = dataflow::lookup_by_cols(&cols);
                    if hit.is_none() {
                        self.pool
                            .obs()
                            .event("dataflow-fallback", "cols not from schedule cache");
                    }
                    hit
                } else {
                    None
                };
                if let Some(bundle) = bundle {
                    // Levels are counted from the CSR row pointer even
                    // though no barrier separates them at run time, so
                    // statistics stay scheduler-invariant.
                    frame.stats.wavefront_levels += (rows.len() - 1) as u64;
                    let region = op.regions[0];
                    let base_env: Env = env.clone();
                    self.pool.try_execute_bundle(
                        &bundle,
                        || (base_env.clone(), Frame::default()),
                        |state: &mut (Env, Frame), block| {
                            let (worker_env, worker_frame) = state;
                            worker_frame.stats.blocks_executed += 1;
                            self.eval_region(
                                body,
                                region,
                                &[RtVal::Int(block as i64)],
                                worker_env,
                                worker_frame,
                            )
                            .map(|_| ())
                        },
                        |(_, worker_frame)| frame.stats.merge(&worker_frame.stats),
                    )?;
                } else if self.pool.threads() == 1 {
                    let obs = self.pool.obs();
                    let record = obs.enabled();
                    let detail = obs.detail_enabled();
                    let mut level_records = Vec::new();
                    let mut run_level = |index: usize,
                                         level: &[i64],
                                         env: &mut Env,
                                         frame: &mut Frame|
                     -> Result<(), ExecError> {
                        let checker = crate::buffer::overlap::LevelChecker::new();
                        let t0 = record.then(std::time::Instant::now);
                        let mut done = 0u64;
                        frame.stats.wavefront_levels += 1;
                        let mut outcome = Ok(());
                        for &c in &cols[level[0] as usize..level[1] as usize] {
                            frame.stats.blocks_executed += 1;
                            done += 1;
                            let _wg = checker.guard(c as usize);
                            if let Err(e) = self
                                .eval_region(body, op.regions[0], &[RtVal::Int(c)], env, frame)
                            {
                                outcome = Err(e);
                                break;
                            }
                        }
                        if let Some(t0) = t0 {
                            let wall_ns = t0.elapsed().as_nanos() as u64;
                            level_records.push(instencil_obs::LevelRecord {
                                index,
                                blocks: (level[1] - level[0]) as u64,
                                wall_ns,
                                workers: if detail {
                                    vec![instencil_obs::WorkerRecord {
                                        busy_ns: wall_ns,
                                        blocks: done,
                                        ..instencil_obs::WorkerRecord::default()
                                    }]
                                } else {
                                    Vec::new()
                                },
                            });
                        }
                        outcome
                    };
                    let mut outcome = Ok(());
                    for (index, level) in rows.windows(2).enumerate() {
                        if let Err(e) = run_level(index, level, env, frame) {
                            outcome = Err(e);
                            break;
                        }
                    }
                    if record {
                        obs.record_wavefronts(instencil_obs::WavefrontRecord {
                            threads: 1,
                            scheduler: Scheduler::Levels.name().to_owned(),
                            sweeps: 1,
                            levels: level_records,
                        });
                    }
                    outcome?;
                } else {
                    let row_ptr: Vec<usize> = rows.iter().map(|&x| x as usize).collect();
                    let blocks: Vec<usize> = cols.iter().map(|&x| x as usize).collect();
                    let schedule = CsrWavefronts::new(row_ptr, blocks);
                    // The coordinator counts levels — once per level
                    // regardless of how many workers ran it — so stats
                    // are identical across thread counts. Workers count
                    // the blocks (and ops) they execute in private
                    // frames, merged below.
                    frame.stats.wavefront_levels += schedule.num_levels() as u64;
                    let region = op.regions[0];
                    // Each worker gets a clone of the environment:
                    // region-local SSA values are written per block but
                    // never read across blocks (dominance), so discarding
                    // the clones afterwards matches sequential semantics.
                    let base_env: Env = env.clone();
                    self.pool.try_execute_stateful(
                        &schedule,
                        || (base_env.clone(), Frame::default()),
                        |state: &mut (Env, Frame), block| {
                            let (worker_env, worker_frame) = state;
                            worker_frame.stats.blocks_executed += 1;
                            self.eval_region(
                                body,
                                region,
                                &[RtVal::Int(block as i64)],
                                worker_env,
                                worker_frame,
                            )
                            .map(|_| ())
                        },
                        |(_, worker_frame)| frame.stats.merge(&worker_frame.stats),
                    )?;
                }
            }
            OpCode::CfdGetParallelBlocks => {
                let grid: Vec<usize> = op
                    .operands
                    .iter()
                    .map(|v| self.int(env, *v).map(|x| x.max(1) as usize))
                    .collect::<Result<_, _>>()?;
                let (shape, data) = op
                    .attrs
                    .get("block_stencil")
                    .and_then(Attribute::as_dense_i8)
                    .ok_or_else(|| ExecError::new("missing block_stencil"))?;
                let deps = blockdeps::from_block_stencil(shape, data);
                let mut span = self.pool.obs().span("run:schedule");
                // The bundle cache runs the Eq. (3) sweep (and the
                // dependence-graph build) once per (grid, deps) pair
                // process-wide; the returned Arcs carry the identity
                // `scf.execute_wavefronts` uses to recover the graph.
                let bundle = dataflow::schedule_bundle(&grid, &deps);
                span.note("levels", bundle.csr.num_levels() as i64);
                span.note("blocks", grid.iter().product::<usize>() as i64);
                drop(span);
                frame.stats.schedules_computed += 1;
                env[op.results[0].index()] = Some(RtVal::I64Arr(Arc::clone(&bundle.rows)));
                env[op.results[1].index()] = Some(RtVal::I64Arr(Arc::clone(&bundle.cols)));
            }
            OpCode::Call => {
                let callee = op
                    .attrs
                    .get("callee")
                    .and_then(Attribute::as_str)
                    .ok_or_else(|| ExecError::new("missing callee"))?
                    .to_owned();
                let args: Vec<RtVal> = op
                    .operands
                    .iter()
                    .map(|v| self.value(env, *v))
                    .collect::<Result<_, _>>()?;
                let results = self.call(&callee, args, frame)?;
                set(env, &op.results, results);
            }
            OpCode::MemAlloc => {
                let ty = body.value_type(op.results[0]);
                let static_shape = ty
                    .shape()
                    .ok_or_else(|| ExecError::new("alloc result must be shaped"))?
                    .to_vec();
                let mut dyn_iter = op.operands.iter();
                let mut shape = Vec::with_capacity(static_shape.len());
                for d in static_shape {
                    match d {
                        Some(n) => shape.push(n),
                        None => {
                            let v = dyn_iter
                                .next()
                                .ok_or_else(|| ExecError::new("missing dynamic size"))?;
                            shape.push(self.int(env, *v)? as usize);
                        }
                    }
                }
                env[op.results[0].index()] = Some(RtVal::Buf(BufferView::alloc(&shape)));
            }
            OpCode::MemDealloc => {}
            OpCode::MemDim => {
                let b = self.buf(env, op.operands[0])?;
                let d = op.int_attr("dim").unwrap_or(0) as usize;
                env[op.results[0].index()] = Some(RtVal::Int(b.dim(d) as i64));
            }
            OpCode::MemLoad => {
                let b = self.buf(env, op.operands[0])?;
                let idx: Vec<i64> = op.operands[1..]
                    .iter()
                    .map(|v| self.int(env, *v))
                    .collect::<Result<_, _>>()?;
                frame.stats.loads += 1;
                env[op.results[0].index()] = Some(RtVal::F64(b.load(&idx)));
            }
            OpCode::MemStore => {
                let v = self.f(env, op.operands[0])?;
                let b = self.buf(env, op.operands[1])?;
                let idx: Vec<i64> = op.operands[2..]
                    .iter()
                    .map(|x| self.int(env, *x))
                    .collect::<Result<_, _>>()?;
                frame.stats.stores += 1;
                b.store(&idx, v);
            }
            OpCode::MemSubview => {
                let b = self.buf(env, op.operands[0])?;
                let rank = b.rank();
                let offsets: Vec<i64> = op.operands[1..1 + rank]
                    .iter()
                    .map(|v| self.int(env, *v))
                    .collect::<Result<_, _>>()?;
                let sizes: Vec<usize> = op.operands[1 + rank..]
                    .iter()
                    .map(|v| self.int(env, *v).map(|x| x as usize))
                    .collect::<Result<_, _>>()?;
                env[op.results[0].index()] = Some(RtVal::Buf(b.subview(&offsets, &sizes)));
            }
            OpCode::MemShiftView => {
                let b = self.buf(env, op.operands[0])?;
                let shifts: Vec<i64> = op.operands[1..]
                    .iter()
                    .map(|v| self.int(env, *v))
                    .collect::<Result<_, _>>()?;
                env[op.results[0].index()] = Some(RtVal::Buf(b.shift_view(&shifts)));
            }
            OpCode::MemCopy => {
                let src = self.buf(env, op.operands[0])?;
                let dst = self.buf(env, op.operands[1])?;
                dst.copy_from(&src);
            }
            OpCode::VecTransferRead => {
                let b = self.buf(env, op.operands[0])?;
                let idx: Vec<i64> = op.operands[1..]
                    .iter()
                    .map(|v| self.int(env, *v))
                    .collect::<Result<_, _>>()?;
                let lanes = match body.value_type(op.results[0]) {
                    Type::Vector { len, .. } => *len,
                    _ => return Err(ExecError::new("transfer_read result not vector")),
                };
                frame.stats.vector_loads += 1;
                env[op.results[0].index()] = Some(RtVal::Vec(b.load_vector(&idx, lanes)));
            }
            OpCode::VecTransferWrite => {
                let v = match self.value(env, op.operands[0])? {
                    RtVal::Vec(v) => v,
                    other => return Err(ExecError::new(format!("transfer_write {other:?}"))),
                };
                let b = self.buf(env, op.operands[1])?;
                let idx: Vec<i64> = op.operands[2..]
                    .iter()
                    .map(|x| self.int(env, *x))
                    .collect::<Result<_, _>>()?;
                frame.stats.vector_stores += 1;
                b.store_vector(&idx, &v);
            }
            OpCode::VecExtract => {
                let v = match self.value(env, op.operands[0])? {
                    RtVal::Vec(v) => v,
                    other => return Err(ExecError::new(format!("vec.extract {other:?}"))),
                };
                let lane = op.int_attr("lane").unwrap_or(0) as usize;
                env[op.results[0].index()] = Some(RtVal::F64(v[lane]));
            }
            OpCode::VecBroadcast => {
                let s = self.f(env, op.operands[0])?;
                let lanes = match body.value_type(op.results[0]) {
                    Type::Vector { len, .. } => *len,
                    _ => return Err(ExecError::new("broadcast result not vector")),
                };
                env[op.results[0].index()] = Some(RtVal::Vec(vec![s; lanes]));
            }
            OpCode::CfdStencil => self.exec_stencil_ref(body, op_id, env, frame)?,
            OpCode::LinalgPointwise => self.exec_pointwise_ref(body, op_id, env, frame)?,
            OpCode::CfdFaceIterator => self.exec_face_ref(body, op_id, env, frame)?,
            other => {
                return Err(ExecError::new(format!(
                    "op {other} is not executable (bufferize/lower the module first)"
                )))
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Reference semantics of the structured ops
    // -----------------------------------------------------------------

    fn bounds_of(
        &self,
        body: &Body,
        op_id: OpId,
        env: &Env,
        k: usize,
        margins: &[i64],
        dims_buf: &BufferView,
    ) -> Result<(Vec<i64>, Vec<i64>), ExecError> {
        let op = body.op(op_id);
        if op.attrs.get("bounded").is_some() {
            let n = op.operands.len();
            let lo: Vec<i64> = op.operands[n - 2 * k..n - k]
                .iter()
                .map(|v| self.int(env, *v))
                .collect::<Result<_, _>>()?;
            let hi: Vec<i64> = op.operands[n - k..]
                .iter()
                .map(|v| self.int(env, *v))
                .collect::<Result<_, _>>()?;
            Ok((lo, hi))
        } else {
            let lo = margins.to_vec();
            let hi: Vec<i64> = (0..k)
                .map(|d| dims_buf.dim(d + 1) as i64 - margins[d])
                .collect();
            Ok((lo, hi))
        }
    }

    fn exec_stencil_ref(
        &self,
        body: &Body,
        op_id: OpId,
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<(), ExecError> {
        frame.stats.reference_ops += 1;
        let op = body.op(op_id);
        if op.attrs.get("bufferized").is_none() {
            return Err(ExecError::new("tensor-form cfd.stencil is not executable"));
        }
        let pattern = attr_to_pattern(
            op.attrs
                .get("stencil")
                .ok_or_else(|| ExecError::new("missing stencil attr"))?,
        )
        .map_err(|e| ExecError::new(e.to_string()))?;
        let nb_var = op.int_attr("nb_var").unwrap_or(1) as usize;
        let n_aux = op.int_attr("n_aux").unwrap_or(0) as usize;
        let sweep = Sweep::decode(op.int_attr("sweep").unwrap_or(1))
            .ok_or_else(|| ExecError::new("bad sweep"))?;
        let k = pattern.rank();
        let x = self.buf(env, op.operands[0])?;
        let b = self.buf(env, op.operands[1])?;
        let aux: Vec<BufferView> = (0..n_aux)
            .map(|a| self.buf(env, op.operands[2 + a]))
            .collect::<Result<_, _>>()?;
        let y = self.buf(env, op.operands[2 + n_aux])?;
        let margins: Vec<i64> = pattern.radii().iter().map(|&r| r as i64).collect();
        let (lo, hi) = self.bounds_of(body, op_id, env, k, &margins, &y)?;
        let layout = RegionLayout {
            offsets: pattern.accessed_offsets(),
            nb_var,
            n_aux,
        };
        let sign = sweep.encode();
        let region = op.regions[0];

        let extents: Vec<i64> = (0..k).map(|d| (hi[d] - lo[d]).max(0)).collect();
        let total: i64 = extents.iter().product();
        let mut tau = vec![0i64; k];
        for _ in 0..total {
            let point: Vec<i64> = (0..k)
                .map(|d| match sweep {
                    Sweep::Forward => lo[d] + tau[d],
                    Sweep::Backward => hi[d] - 1 - tau[d],
                })
                .collect();
            // Gather region arguments.
            let mut args = vec![RtVal::F64(0.0); layout.num_args()];
            for (o, r) in layout.offsets.iter().enumerate() {
                let neighbor: Vec<i64> = (0..k).map(|d| point[d] + sign * r[d]).collect();
                let from_y = pattern.value_at(r) == -1;
                for v in 0..nb_var {
                    let mut full = vec![v as i64];
                    full.extend_from_slice(&neighbor);
                    let src = if from_y { &y } else { &x };
                    frame.stats.loads += 1;
                    args[layout.state_index(o, v)] = RtVal::F64(src.load(&full));
                    for (a, ab) in aux.iter().enumerate() {
                        frame.stats.loads += 1;
                        args[layout.aux_index(o, a, v)] = RtVal::F64(ab.load(&full));
                    }
                }
            }
            let yields = self.eval_region(body, region, &args, env, frame)?;
            for v in 0..nb_var {
                let mut full = vec![v as i64];
                full.extend_from_slice(&point);
                frame.stats.loads += 1;
                let mut sum = b.load(&full);
                for o in 0..layout.offsets.len() {
                    sum += yields[layout.contrib_yield_index(o, v)].as_f64();
                    frame.stats.scalar_flops += 1;
                }
                let d = yields[layout.d_yield_index(v)].as_f64();
                frame.stats.scalar_flops += 1;
                frame.stats.stores += 1;
                y.store(&full, d * sum);
            }
            // Odometer over tau.
            for d in (0..k).rev() {
                tau[d] += 1;
                if tau[d] < extents[d] {
                    break;
                }
                tau[d] = 0;
            }
        }
        Ok(())
    }

    fn exec_pointwise_ref(
        &self,
        body: &Body,
        op_id: OpId,
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<(), ExecError> {
        frame.stats.reference_ops += 1;
        let op = body.op(op_id);
        if op.attrs.get("bufferized").is_none() {
            return Err(ExecError::new(
                "tensor-form linalg.pointwise is not executable",
            ));
        }
        let n_ins = op.int_attr("n_ins").unwrap_or(0) as usize;
        let interior = op
            .int_array_attr("interior")
            .ok_or_else(|| ExecError::new("pointwise missing interior"))?
            .to_vec();
        let rank = interior.len();
        let k = rank - 1;
        let offsets_flat = op
            .int_array_attr("offsets")
            .ok_or_else(|| ExecError::new("pointwise missing offsets"))?
            .to_vec();
        let offsets: Vec<Vec<i64>> = offsets_flat.chunks(rank).map(<[i64]>::to_vec).collect();
        let ins: Vec<BufferView> = (0..n_ins)
            .map(|j| self.buf(env, op.operands[j]))
            .collect::<Result<_, _>>()?;
        let out = self.buf(env, op.operands[n_ins])?;
        let dims_buf = if n_ins > 0 {
            ins[0].clone()
        } else {
            out.clone()
        };
        let (wlo, whi) = self.bounds_of(body, op_id, env, k, &interior[1..], &dims_buf)?;
        // Clamp window to interior.
        let lo: Vec<i64> = (0..k).map(|d| wlo[d].max(interior[d + 1])).collect();
        let hi: Vec<i64> = (0..k)
            .map(|d| whi[d].min(dims_buf.dim(d + 1) as i64 - interior[d + 1]))
            .collect();
        let region = op.regions[0];
        let n0 = out.dim(0) as i64;
        let extents: Vec<i64> = (0..k).map(|d| (hi[d] - lo[d]).max(0)).collect();
        let total: i64 = extents.iter().product();
        for v in 0..n0 {
            let mut tau = vec![0i64; k];
            for _ in 0..total {
                let point: Vec<i64> = (0..k).map(|d| lo[d] + tau[d]).collect();
                let mut args = Vec::with_capacity(n_ins);
                for (j, buf) in ins.iter().enumerate() {
                    let off = &offsets[j];
                    let mut full = vec![v + off[0]];
                    for d in 0..k {
                        full.push(point[d] + off[d + 1]);
                    }
                    frame.stats.loads += 1;
                    args.push(RtVal::F64(buf.load(&full)));
                }
                let yields = self.eval_region(body, region, &args, env, frame)?;
                let mut full = vec![v];
                full.extend_from_slice(&point);
                frame.stats.stores += 1;
                out.store(&full, yields[0].as_f64());
                for d in (0..k).rev() {
                    tau[d] += 1;
                    if tau[d] < extents[d] {
                        break;
                    }
                    tau[d] = 0;
                }
            }
        }
        Ok(())
    }

    fn exec_face_ref(
        &self,
        body: &Body,
        op_id: OpId,
        env: &mut Env,
        frame: &mut Frame,
    ) -> Result<(), ExecError> {
        frame.stats.reference_ops += 1;
        let op = body.op(op_id);
        if op.attrs.get("bufferized").is_none() {
            return Err(ExecError::new(
                "tensor-form cfd.face_iterator is not executable",
            ));
        }
        let axis = op.int_attr("axis").unwrap_or(0) as usize;
        let nb_var = op.int_attr("nb_var").unwrap_or(1) as usize;
        let margin = op.int_attr("margin").unwrap_or(1);
        let x = self.buf(env, op.operands[0])?;
        let b = self.buf(env, op.operands[1])?;
        let k = x.rank() - 1;
        let glo: Vec<i64> = vec![margin; k];
        let ghi: Vec<i64> = (0..k).map(|d| x.dim(d + 1) as i64 - margin).collect();
        let (wlo, whi) = self.bounds_of(body, op_id, env, k, &glo, &x)?;
        // Face loop bounds.
        let mut flo = Vec::with_capacity(k);
        let mut fhi = Vec::with_capacity(k);
        for d in 0..k {
            if d == axis {
                // Include boundary-adjacent faces (frozen ghost cells).
                flo.push((wlo[d] - 1).max(glo[d] - 1));
                fhi.push(whi[d].min(ghi[d]));
            } else {
                flo.push(wlo[d].max(glo[d]));
                fhi.push(whi[d].min(ghi[d]));
            }
        }
        let region = op.regions[0];
        let extents: Vec<i64> = (0..k).map(|d| (fhi[d] - flo[d]).max(0)).collect();
        let total: i64 = extents.iter().product();
        let mut tau = vec![0i64; k];
        for _ in 0..total {
            let left: Vec<i64> = (0..k).map(|d| flo[d] + tau[d]).collect();
            let mut right = left.clone();
            right[axis] += 1;
            let mut args = Vec::with_capacity(2 * nb_var);
            for cell in [&left, &right] {
                for v in 0..nb_var {
                    let mut full = vec![v as i64];
                    full.extend_from_slice(cell);
                    frame.stats.loads += 1;
                    args.push(RtVal::F64(x.load(&full)));
                }
            }
            let flux = self.eval_region(body, region, &args, env, frame)?;
            if left[axis] >= wlo[axis] {
                for (v, f) in flux.iter().enumerate() {
                    let mut full = vec![v as i64];
                    full.extend_from_slice(&left);
                    let cur = b.load(&full);
                    b.store(&full, cur + f.as_f64());
                    frame.stats.loads += 1;
                    frame.stats.stores += 1;
                    frame.stats.scalar_flops += 1;
                }
            }
            if right[axis] < whi[axis] {
                for (v, f) in flux.iter().enumerate() {
                    let mut full = vec![v as i64];
                    full.extend_from_slice(&right);
                    let cur = b.load(&full);
                    b.store(&full, cur - f.as_f64());
                    frame.stats.loads += 1;
                    frame.stats.stores += 1;
                    frame.stats.scalar_flops += 1;
                }
            }
            for d in (0..k).rev() {
                tau[d] += 1;
                if tau[d] < extents[d] {
                    break;
                }
                tau[d] = 0;
            }
        }
        Ok(())
    }
}

/// Convenience: asserts a value is defined by an op (used in tests).
pub fn is_op_result(body: &Body, v: ValueId) -> bool {
    matches!(body.value_def(v), ValueDef::OpResult { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_ir::{FuncBuilder, Module};

    fn run_scalar_func(build: impl FnOnce(&mut FuncBuilder)) -> Vec<RtVal> {
        let mut fb = FuncBuilder::new("f", vec![], vec![Type::F64]);
        build(&mut fb);
        let mut m = Module::new("t");
        m.push_func(fb.finish());
        m.verify().unwrap();
        let mut interp = Interpreter::new();
        interp.call(&m, "f", vec![]).unwrap()
    }

    #[test]
    fn arithmetic_and_loop() {
        let out = run_scalar_func(|fb| {
            let c0 = fb.const_index(0);
            let c10 = fb.const_index(10);
            let c1 = fb.const_index(1);
            let acc0 = fb.const_f64(0.0);
            let r = fb.build_for(c0, c10, c1, vec![acc0], |fb, iv, iters| {
                let x = fb.index_to_f64(iv);
                vec![fb.addf(iters[0], x)]
            });
            fb.ret(vec![r[0]]);
        });
        assert_eq!(out[0].as_f64(), 45.0);
    }

    #[test]
    fn if_and_compare() {
        let out = run_scalar_func(|fb| {
            let a = fb.const_f64(3.0);
            let b = fb.const_f64(5.0);
            let c = fb.cmpf(instencil_ir::CmpPred::Lt, a, b);
            let r = fb.build_if(
                c,
                vec![Type::F64],
                |fb| vec![fb.const_f64(1.0)],
                |fb| vec![fb.const_f64(-1.0)],
            );
            fb.ret(vec![r[0]]);
        });
        assert_eq!(out[0].as_f64(), 1.0);
    }

    #[test]
    fn memory_and_vectors() {
        let m2 = Type::memref_dyn(Type::F64, 2);
        let mut fb = FuncBuilder::new("f", vec![m2], vec![Type::F64]);
        let buf = fb.arg(0);
        let i0 = fb.const_index(0);
        let i1 = fb.const_index(1);
        let v = fb.transfer_read(buf, &[i0, i0], 4);
        let two = fb.const_f64_vector(2.0, 4);
        let scaled = fb.mulf(v, two);
        fb.transfer_write_mem(scaled, buf, &[i1, i0]);
        let x = fb.vec_extract(scaled, 3);
        fb.ret(vec![x]);
        let mut m = Module::new("t");
        m.push_func(fb.finish());
        m.verify().unwrap();
        let b = BufferView::from_data(&[2, 4], (0..8).map(f64::from).collect());
        let mut interp = Interpreter::new();
        let out = interp.call(&m, "f", vec![RtVal::Buf(b.clone())]).unwrap();
        assert_eq!(out[0].as_f64(), 6.0);
        assert_eq!(b.to_vec()[4..], [0.0, 2.0, 4.0, 6.0]);
        assert_eq!(interp.stats.vector_loads, 1);
        assert_eq!(interp.stats.vector_stores, 1);
        assert_eq!(interp.stats.vector_flops, 1);
    }

    #[test]
    fn get_parallel_blocks_produces_csr() {
        let mut fb = FuncBuilder::new("f", vec![], vec![]);
        let n = fb.const_index(3);
        let (rows, cols) = instencil_core::ops::build_get_parallel_blocks(
            &mut fb,
            &[n, n],
            vec![3, 3],
            vec![0, 0, 0, -1, 0, 0, 0, -1, 0],
        );
        let _ = (rows, cols);
        fb.ret(vec![]);
        let mut m = Module::new("t");
        m.push_func(fb.finish());
        let mut interp = Interpreter::new();
        interp.call(&m, "f", vec![]).unwrap();
        assert_eq!(interp.stats.schedules_computed, 1);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut fb = FuncBuilder::new("f", vec![], vec![Type::Index]);
        let a = fb.const_index(3);
        let z = fb.const_index(0);
        let q = fb.floordiv(a, z);
        fb.ret(vec![q]);
        let mut m = Module::new("t");
        m.push_func(fb.finish());
        let mut interp = Interpreter::new();
        let e = interp.call(&m, "f", vec![]).unwrap_err();
        assert!(e.message.contains("division by zero"), "{e}");
    }

    #[test]
    fn missing_function_is_an_error() {
        let m = Module::new("t");
        let mut interp = Interpreter::new();
        assert!(interp.call(&m, "nope", vec![]).is_err());
    }

    #[test]
    fn threads_knob_clamps_to_one() {
        assert_eq!(Interpreter::with_threads(0).threads(), 1);
        assert_eq!(Interpreter::with_threads(4).threads(), 4);
        assert_eq!(Interpreter::new().threads(), 1);
    }
}
