//! Runtime n-dimensional `f64` buffers with aliasing views.
//!
//! A [`BufferView`] is a (possibly shifted or sliced) window into shared
//! storage. Views implement the semantics of `memref.subview` and
//! `memref.shift_view`: a shifted view is addressed in *global*
//! coordinates (`view[i] = src[i - shift]`), which is how fused per-tile
//! temporaries are accessed by bounded producers.
//!
//! # Threading model
//!
//! Storage is reference-counted and shared across threads: each element
//! is an `AtomicU64` holding the bit pattern of an `f64`, accessed with
//! `Relaxed` ordering. This makes concurrent access from wavefront
//! workers *safe by construction* (no data race is possible, and every
//! store is bit-exact), while the *determinism* of parallel execution is
//! guaranteed at the schedule level: within a wavefront level, sub-domains
//! write disjoint regions (paper Eq. (3)), and the barrier between levels
//! (a thread join) establishes the happens-before edge that publishes one
//! level's stores to the next. On x86-64 and AArch64 a relaxed atomic
//! load/store compiles to a plain move, so sequential interpretation pays
//! no measurable cost for this.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Raw, non-atomic access to a buffer's storage for run-specialized
/// execution (the "disjoint tile view" of DESIGN.md §4f).
///
/// A `TileView` addresses the *whole underlying allocation* by flat
/// element index (the same flat index [`BufferView`] computes), but
/// reads and writes plain `u64`/`f64` words instead of going through
/// `AtomicU64` — which is what lets LLVM autovectorize the streamed
/// inner loops of a run (relaxed atomic accesses are never vectorized).
///
/// # Safety argument
///
/// The storage is an `Arc<[AtomicU64]>`; `AtomicU64` is an interior-
/// mutability (`UnsafeCell`-based) type with the same in-memory
/// representation as `u64`, so writing through a raw pointer derived
/// from the shared allocation is sound *provided no other thread
/// accesses the same elements concurrently*. That exclusivity is
/// exactly what the Eq. (3) wavefront schedule guarantees: two blocks
/// of the same level never overlap in writes (or in a read of one and
/// a write of the other) — any such overlap is a block dependence and
/// forces the blocks into different levels, and the thread join between
/// levels establishes the happens-before edge. The debug-mode
/// [`overlap`] checker enforces this at run time in every test build.
///
/// Bounds are *not* checked per access (`debug_assert!` only): the run
/// planner proves every address of a run in-bounds up front by
/// bounds-checking both run endpoints through [`BufferView`]'s checked
/// flat-index path (per-dimension indices are affine in the iteration
/// variable, so the endpoints bound every intermediate iteration).
#[derive(Clone, Copy, Debug)]
pub(crate) struct TileView {
    ptr: *mut u64,
    len: usize,
}

// SAFETY: a TileView is only dereferenced inside one wavefront block,
// whose accesses are disjoint from every concurrently running block
// (Eq. 3); the pointee allocation is kept alive by the BufferView held
// in the executing frame's register file.
unsafe impl Send for TileView {}
unsafe impl Sync for TileView {}

impl TileView {
    /// Reads element `i` (flat index into the allocation).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len, "tile read {i} out of {}", self.len);
        // SAFETY: see the type-level safety argument; `i` was proven
        // in-bounds by the run planner's endpoint checks.
        unsafe { f64::from_bits(*self.ptr.add(i)) }
    }

    /// Writes element `i` (flat index into the allocation).
    #[inline]
    pub(crate) fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len, "tile write {i} out of {}", self.len);
        // SAFETY: as for `get`; the pointee is interior-mutable
        // (AtomicU64), so writing through a shared allocation is sound.
        unsafe { *self.ptr.add(i) = v.to_bits() }
    }

    /// Identity of the underlying allocation (shared by every view of
    /// the same storage) — the key hazard analysis and the overlap
    /// checker group accesses by.
    #[inline]
    pub(crate) fn id(&self) -> usize {
        self.ptr as usize
    }
}

/// A view into shared `f64` storage.
#[derive(Clone)]
pub struct BufferView {
    storage: Arc<[AtomicU64]>,
    /// Extent per dimension (of this view).
    shape: Vec<usize>,
    /// Element stride per dimension.
    strides: Vec<isize>,
    /// Linear offset of the element at coordinate `origin`.
    base: isize,
    /// First valid coordinate per dimension (non-zero for shifted views).
    origin: Vec<i64>,
}

impl BufferView {
    /// Allocates a zero-initialized buffer of the given shape.
    ///
    /// Zero-initialization is a deliberate semantic choice of this
    /// runtime (MLIR's `memref.alloc` leaves memory undefined): fused
    /// per-tile `B` temporaries rely on starting from zero.
    pub fn alloc(shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        let mut strides = vec![1isize; shape.len()];
        for d in (0..shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1] as isize;
        }
        // 0u64 is the bit pattern of 0.0f64.
        let storage: Arc<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(0)).collect();
        BufferView {
            storage,
            shape: shape.to_vec(),
            strides,
            base: 0,
            origin: vec![0; shape.len()],
        }
    }

    /// Builds a buffer from existing data (row-major).
    ///
    /// # Panics
    /// Panics if `data.len() != shape.iter().product()`.
    pub fn from_data(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data/shape mismatch"
        );
        let b = Self::alloc(shape);
        for (slot, v) in b.storage.iter().zip(data) {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
        b
    }

    /// View extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank of the view.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Extent along one dimension.
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Whether two views may touch the same elements.
    ///
    /// Views on different allocations never alias. Views on the same
    /// allocation are compared by their addressable flat-index intervals:
    /// two *disjoint* subviews of one buffer (e.g. complementary halves)
    /// do not alias. The answer stays conservative for genuinely
    /// overlapping intervals — stride gaps could still make the element
    /// sets disjoint, but interval overlap is reported as aliasing.
    pub fn aliases(&self, other: &BufferView) -> bool {
        if !Arc::ptr_eq(&self.storage, &other.storage) {
            return false;
        }
        match (self.flat_range(), other.flat_range()) {
            (Some((a_lo, a_hi)), Some((b_lo, b_hi))) => a_lo <= b_hi && b_lo <= a_hi,
            // An empty view addresses no elements.
            _ => false,
        }
    }

    /// Inclusive `[lo, hi]` interval of flat indices this view can
    /// address, or `None` when the view is empty.
    fn flat_range(&self) -> Option<(isize, isize)> {
        if self.shape.contains(&0) {
            return None;
        }
        let mut lo = self.base;
        let mut hi = self.base;
        for d in 0..self.rank() {
            let extent = (self.shape[d] - 1) as isize * self.strides[d];
            if extent >= 0 {
                hi += extent;
            } else {
                lo += extent;
            }
        }
        Some((lo, hi))
    }

    /// Resolves one run access to `(flat base, per-iteration flat
    /// delta, flat lane stride)` in a single pass over the dimensions,
    /// bounds-checking both run endpoints — per-dimension indices are
    /// linear in the iteration, so in-bounds endpoints bound all `n`
    /// iterations. Panics exactly like a scalar access at the offending
    /// endpoint. A `lanes`-wide vector access advances its lanes along
    /// the last dimension (matching `load_vector_into` /
    /// `store_vector`), so both run endpoints are additionally checked
    /// at last-dim index `+ (lanes − 1)`; per-lane plans are
    /// `base + l · lane_stride`.
    pub(crate) fn resolve_run_lanes(
        &self,
        i0: &[i64],
        i1: &[i64],
        n: usize,
        lanes: usize,
    ) -> (isize, isize, isize) {
        debug_assert_eq!(i0.len(), self.rank(), "index rank mismatch");
        let last = (n - 1) as i64;
        let wide = (lanes - 1) as i64;
        let inner = i0.len() - 1;
        let mut base = self.base;
        let mut delta = 0isize;
        for d in 0..i0.len() {
            let local = i0[d] - self.origin[d];
            if local < 0 || (local as usize) >= self.shape[d] {
                self.oob(i0, d);
            }
            let step = i1[d] - i0[d];
            let end = local + last * step;
            if end < 0 || (end as usize) >= self.shape[d] {
                self.oob_end(i0, i1, last, d);
            }
            if d == inner && wide > 0 {
                // Highest lane of both endpoints: in-bounds corners
                // bound every (iteration, lane) cell in between.
                if (local + wide) as usize >= self.shape[d] {
                    self.oob_lane(i0, wide, d);
                }
                if end + wide < 0 || (end + wide) as usize >= self.shape[d] {
                    self.oob_end_lane(i0, i1, last, wide, d);
                }
            }
            base += local as isize * self.strides[d];
            delta += step as isize * self.strides[d];
        }
        (base, delta, self.strides[inner])
    }

    /// Outlined endpoint-violation path of [`Self::resolve_run`]:
    /// reconstructs the full endpoint index so the panic reads exactly
    /// like a scalar access to it.
    #[cold]
    #[inline(never)]
    fn oob_end(&self, i0: &[i64], i1: &[i64], last: i64, d: usize) -> ! {
        let end: Vec<i64> = i0
            .iter()
            .zip(i1)
            .map(|(&a, &b)| a + last * (b - a))
            .collect();
        self.oob(&end, d);
    }

    /// Outlined lane-violation paths of [`Self::resolve_run_lanes`]:
    /// panic like a scalar access to the highest lane's cell.
    #[cold]
    #[inline(never)]
    fn oob_lane(&self, i0: &[i64], wide: i64, d: usize) -> ! {
        let mut idx = i0.to_vec();
        *idx.last_mut().unwrap() += wide;
        self.oob(&idx, d);
    }

    #[cold]
    #[inline(never)]
    fn oob_end_lane(&self, i0: &[i64], i1: &[i64], last: i64, wide: i64, d: usize) -> ! {
        let mut end: Vec<i64> = i0
            .iter()
            .zip(i1)
            .map(|(&a, &b)| a + last * (b - a))
            .collect();
        *end.last_mut().unwrap() += wide;
        self.oob(&end, d);
    }

    /// Raw non-atomic handle on the whole underlying allocation.
    pub(crate) fn tile_view(&self) -> TileView {
        TileView {
            // AtomicU64 has the same in-memory representation as u64;
            // the pointee is interior-mutable, so writing through a
            // pointer derived from the shared allocation is sound.
            ptr: self.storage.as_ptr().cast::<u64>().cast_mut(),
            len: self.storage.len(),
        }
    }

    /// The allocation this view addresses (for overlap-checker pinning).
    #[cfg(debug_assertions)]
    pub(crate) fn storage(&self) -> &Arc<[AtomicU64]> {
        &self.storage
    }

    #[inline]
    fn flat_index(&self, idx: &[i64]) -> isize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = self.base;
        for d in 0..idx.len() {
            let local = idx[d] - self.origin[d];
            if local < 0 || (local as usize) >= self.shape[d] {
                self.oob(idx, d);
            }
            flat += local as isize * self.strides[d];
        }
        flat
    }

    /// Outlined panic path of [`Self::flat_index`], keeping the hot
    /// loop free of format machinery.
    #[cold]
    #[inline(never)]
    fn oob(&self, idx: &[i64], d: usize) -> ! {
        panic!(
            "index {idx:?} out of bounds (dim {d}: valid [{}, {}))",
            self.origin[d],
            self.origin[d] + self.shape[d] as i64
        );
    }

    /// Bounds-checked flat index from an index iterator (no slice needed;
    /// the bytecode engine feeds register values directly).
    #[inline]
    fn flat_index_iter(&self, idx: impl IntoIterator<Item = i64>) -> isize {
        let mut flat = self.base;
        let mut d = 0usize;
        for x in idx {
            assert!(d < self.rank(), "index rank mismatch");
            let local = x - self.origin[d];
            assert!(
                local >= 0 && (local as usize) < self.shape[d],
                "index {x} out of bounds (dim {d}: valid [{}, {}))",
                self.origin[d],
                self.origin[d] + self.shape[d] as i64
            );
            flat += local as isize * self.strides[d];
            d += 1;
        }
        assert_eq!(d, self.rank(), "index rank mismatch");
        flat
    }

    /// Scalar load with indices supplied by an iterator (allocation-free
    /// for callers that hold indices in registers).
    ///
    /// # Panics
    /// Panics when the index is out of the view's valid range.
    pub fn load_iter(&self, idx: impl IntoIterator<Item = i64>) -> f64 {
        let flat = self.flat_index_iter(idx);
        f64::from_bits(self.storage[flat as usize].load(Ordering::Relaxed))
    }

    /// Scalar store with indices supplied by an iterator.
    ///
    /// # Panics
    /// Panics when the index is out of the view's valid range.
    pub fn store_iter(&self, idx: impl IntoIterator<Item = i64>, value: f64) {
        let flat = self.flat_index_iter(idx);
        overlap::note_store(&self.storage, flat as usize, 1);
        self.storage[flat as usize].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Scalar load.
    ///
    /// # Panics
    /// Panics when the index is out of the view's valid range.
    pub fn load(&self, idx: &[i64]) -> f64 {
        let flat = self.flat_index(idx);
        f64::from_bits(self.storage[flat as usize].load(Ordering::Relaxed))
    }

    /// Scalar store.
    ///
    /// # Panics
    /// Panics when the index is out of the view's valid range.
    pub fn store(&self, idx: &[i64], value: f64) {
        let flat = self.flat_index(idx);
        overlap::note_store(&self.storage, flat as usize, 1);
        self.storage[flat as usize].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Whether a `lanes`-wide run starting at `idx` along the last
    /// dimension is contiguous in storage and fully in bounds — the fast
    /// path shared by [`BufferView::load_vector`] and
    /// [`BufferView::store_vector`]: one bounds check for the whole run,
    /// then plain consecutive element accesses.
    #[inline]
    fn contiguous_run(&self, idx: &[i64], lanes: usize) -> Option<usize> {
        let last = self.rank() - 1;
        if self.strides[last] != 1 {
            return None;
        }
        let local = idx[last] - self.origin[last];
        if local < 0 || (local as usize) + lanes > self.shape[last] {
            return None;
        }
        // `flat_index` re-checks the leading dimensions (checking the
        // innermost start a second time costs nothing measurable).
        Some(self.flat_index(idx) as usize)
    }

    /// Reads `lanes` consecutive elements along the last dimension.
    pub fn load_vector(&self, idx: &[i64], lanes: usize) -> Vec<f64> {
        let mut out = vec![0.0; lanes];
        self.load_vector_into(idx, &mut out);
        out
    }

    /// Reads `out.len()` consecutive elements along the last dimension
    /// into `out` without allocating. Contiguous views (innermost stride
    /// 1) take a single-bounds-check fast path over the lane run.
    pub fn load_vector_into(&self, idx: &[i64], out: &mut [f64]) {
        if let Some(flat) = self.contiguous_run(idx, out.len()) {
            for (l, o) in out.iter_mut().enumerate() {
                *o = f64::from_bits(self.storage[flat + l].load(Ordering::Relaxed));
            }
            return;
        }
        // Strided (or out-of-range, which panics like a scalar access).
        let last = idx.len() - 1;
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.load_iter(
                idx.iter()
                    .enumerate()
                    .map(|(d, &x)| if d == last { x + l as i64 } else { x }),
            );
        }
    }

    /// Writes `values` consecutively along the last dimension. Contiguous
    /// views (innermost stride 1) take a single-bounds-check fast path.
    pub fn store_vector(&self, idx: &[i64], values: &[f64]) {
        if let Some(flat) = self.contiguous_run(idx, values.len()) {
            overlap::note_store(&self.storage, flat, values.len());
            for (l, &v) in values.iter().enumerate() {
                self.storage[flat + l].store(v.to_bits(), Ordering::Relaxed);
            }
            return;
        }
        let last = idx.len() - 1;
        for (l, &v) in values.iter().enumerate() {
            self.store_iter(
                idx.iter()
                    .enumerate()
                    .map(|(d, &x)| if d == last { x + l as i64 } else { x }),
                v,
            );
        }
    }

    /// `memref.subview`: a rectangular window re-addressed from zero.
    pub fn subview(&self, offsets: &[i64], sizes: &[usize]) -> BufferView {
        assert_eq!(offsets.len(), self.rank());
        let mut base = self.base;
        for ((&off, &origin), &stride) in offsets.iter().zip(&self.origin).zip(&self.strides) {
            base += (off - origin) as isize * stride;
        }
        BufferView {
            storage: Arc::clone(&self.storage),
            shape: sizes.to_vec(),
            strides: self.strides.clone(),
            base,
            origin: vec![0; self.rank()],
        }
    }

    /// `memref.shift_view`: the same window addressed in shifted
    /// coordinates (`view[i] = self[i - shift]`).
    pub fn shift_view(&self, shifts: &[i64]) -> BufferView {
        assert_eq!(shifts.len(), self.rank());
        let origin = self.origin.iter().zip(shifts).map(|(o, s)| o + s).collect();
        BufferView {
            storage: Arc::clone(&self.storage),
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            base: self.base,
            origin,
        }
    }

    /// Copies all elements of `src` into `self` (matching shapes).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&self, src: &BufferView) {
        assert_eq!(self.shape, src.shape, "copy shape mismatch");
        // Iterate in row-major order over the view coordinates.
        let total: usize = self.shape.iter().product();
        let mut idx = vec![0i64; self.rank()];
        for _ in 0..total {
            let src_idx: Vec<i64> = idx.iter().zip(&src.origin).map(|(i, o)| i + o).collect();
            let dst_idx: Vec<i64> = idx.iter().zip(&self.origin).map(|(i, o)| i + o).collect();
            self.store(&dst_idx, src.load(&src_idx));
            // Increment odometer.
            for d in (0..self.rank()).rev() {
                idx[d] += 1;
                if (idx[d] as usize) < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Flattens the view into a row-major vector (for test assertions).
    pub fn to_vec(&self) -> Vec<f64> {
        let total: usize = self.shape.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0i64; self.rank()];
        for _ in 0..total {
            let full: Vec<i64> = idx.iter().zip(&self.origin).map(|(i, o)| i + o).collect();
            out.push(self.load(&full));
            for d in (0..self.rank()).rev() {
                idx[d] += 1;
                if (idx[d] as usize) < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// Fills every element with a value.
    pub fn fill(&self, value: f64) {
        if self.base == 0
            && self.origin.iter().all(|&o| o == 0)
            && self.shape.iter().product::<usize>() == self.storage.len()
        {
            overlap::note_store(&self.storage, 0, self.storage.len());
            let bits = value.to_bits();
            for slot in self.storage.iter() {
                slot.store(bits, Ordering::Relaxed);
            }
        } else {
            let total: usize = self.shape.iter().product();
            let mut idx = vec![0i64; self.rank()];
            for _ in 0..total {
                let full: Vec<i64> = idx.iter().zip(&self.origin).map(|(i, o)| i + o).collect();
                self.store(&full, value);
                for d in (0..self.rank()).rev() {
                    idx[d] += 1;
                    if (idx[d] as usize) < self.shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
    }

    /// Batch-boundary residual fold: one row-major pass computing the
    /// max-norm of `self − prev` while refreshing `prev` in place with
    /// the current values. Replaces the snapshot-then-zip double pass of
    /// the eager convergence loop (one allocation and one traversal per
    /// check instead of two of each). Partial maxima are kept per
    /// fixed-size chunk and merged at the end, so the reduction tree is
    /// deterministic regardless of how the sweeps that produced `self`
    /// were scheduled.
    ///
    /// # Panics
    /// Panics when `prev.len()` differs from the view's element count.
    pub fn max_delta_update(&self, prev: &mut [f64]) -> f64 {
        let total: usize = self.shape.iter().product();
        assert_eq!(
            prev.len(),
            total,
            "previous snapshot has a different element count"
        );
        const CHUNK: usize = 1024;
        let mut idx = vec![0i64; self.rank()];
        let mut full = vec![0i64; self.rank()];
        let mut partials: Vec<f64> = Vec::with_capacity(total.div_ceil(CHUNK).min(4096));
        let mut chunk_max = 0.0f64;
        for (flat, prev_slot) in prev.iter_mut().enumerate() {
            for d in 0..self.rank() {
                full[d] = idx[d] + self.origin[d];
            }
            let cur = self.load(&full);
            chunk_max = chunk_max.max((cur - *prev_slot).abs());
            *prev_slot = cur;
            if (flat + 1) % CHUNK == 0 {
                partials.push(chunk_max);
                chunk_max = 0.0;
            }
            for d in (0..self.rank()).rev() {
                idx[d] += 1;
                if (idx[d] as usize) < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        partials.push(chunk_max);
        partials.into_iter().fold(0.0, f64::max)
    }

    /// Maximum absolute elementwise difference against another view of the
    /// same shape.
    pub fn max_abs_diff(&self, other: &BufferView) -> f64 {
        assert_eq!(self.shape, other.shape);
        self.to_vec()
            .iter()
            .zip(other.to_vec())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Debug-mode wavefront overlap checker — a lightweight race detector
/// for the Eq. (3) disjointness guarantee the non-atomic [`TileView`]
/// path relies on.
///
/// While a wavefront block executes (between [`LevelChecker::guard`]
/// and the guard's drop), every buffer store on that thread is recorded
/// into a thread-local, per-block set of flat-index intervals, grouped
/// by allocation. When the block finishes, its write set is merged into
/// the level's shared state; if it intersects the write set of any
/// *other* block of the same level, the checker panics naming both
/// blocks and the offending extents. A fresh [`LevelChecker`] per level
/// implements the "reset at the barrier" semantics — blocks of
/// *different* levels may freely write the same cells.
///
/// Recorded write sets pin an `Arc` clone of each touched allocation
/// until the level ends, so a per-block temporary freed by one block
/// cannot be re-allocated at the same address by a later block of the
/// same level and produce a false positive.
///
/// The whole module compiles to no-ops in release builds (`ci.sh` runs
/// the checker tests under the debug profile); `cargo test` exercises
/// it on every shipped schedule by default.
#[cfg(debug_assertions)]
pub mod overlap {
    use std::cell::RefCell;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Mutex};

    /// One allocation's recorded writes: (allocation id, pinned storage,
    /// closed `[lo, hi]` flat-index intervals).
    type StorageWrites = (usize, Arc<[AtomicU64]>, Vec<(usize, usize)>);

    /// Write extents of one block, grouped by allocation. Intervals are
    /// coalesced on the fly for the common consecutive-store case and
    /// normalized at commit.
    struct BlockWrites {
        block: usize,
        per_storage: Vec<StorageWrites>,
    }

    thread_local! {
        static ACTIVE: RefCell<Option<BlockWrites>> = const { RefCell::new(None) };
    }

    /// Shared per-level state: the write sets of every finished block.
    #[derive(Default)]
    pub struct LevelChecker {
        done: Mutex<Vec<BlockWrites>>,
    }

    impl LevelChecker {
        /// A fresh checker (create one per wavefront level).
        pub fn new() -> Self {
            Self::default()
        }

        /// Starts recording block `block` on the current thread; the
        /// returned guard commits and checks the write set on drop.
        pub fn guard(&self, block: usize) -> BlockGuard<'_> {
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                debug_assert!(a.is_none(), "nested overlap-checker blocks");
                *a = Some(BlockWrites {
                    block,
                    per_storage: Vec::new(),
                });
            });
            BlockGuard { checker: self }
        }

        fn commit(&self, mut writes: BlockWrites) {
            for (_, _, intervals) in &mut writes.per_storage {
                normalize(intervals);
            }
            let mut done = self.done.lock().unwrap();
            for prior in done.iter() {
                for (id, _, intervals) in &writes.per_storage {
                    for (pid, _, prior_intervals) in &prior.per_storage {
                        if pid != id {
                            continue;
                        }
                        if let Some((lo, hi)) = intersect(intervals, prior_intervals) {
                            panic!(
                                "wavefront overlap: blocks {} and {} of the same \
                                 level both wrote flat extent [{lo}, {hi}] of one \
                                 allocation — the schedule violates Eq. (3) \
                                 disjointness",
                                prior.block, writes.block
                            );
                        }
                    }
                }
            }
            done.push(writes);
        }
    }

    /// RAII scope of one block's recording (see [`LevelChecker::guard`]).
    pub struct BlockGuard<'a> {
        checker: &'a LevelChecker,
    }

    impl Drop for BlockGuard<'_> {
        fn drop(&mut self) {
            let Some(writes) = ACTIVE.with(|a| a.borrow_mut().take()) else {
                return;
            };
            // Don't double-panic while unwinding out of a failed block.
            if std::thread::panicking() {
                return;
            }
            self.checker.commit(writes);
        }
    }

    /// Records a store of `len` elements at flat index `lo` (no-op
    /// outside a block guard, i.e. outside wavefront execution).
    #[inline]
    pub(crate) fn note_store(storage: &Arc<[AtomicU64]>, lo: usize, len: usize) {
        ACTIVE.with(|a| {
            if let Some(w) = a.borrow_mut().as_mut() {
                w.push(storage.as_ptr() as usize, Some(storage), lo, len);
            }
        });
    }

    /// Pins `storage` in the current block's write set so later
    /// [`note_store_raw`] calls with its id are address-stable.
    #[inline]
    pub(crate) fn pin_storage(storage: &Arc<[AtomicU64]>) {
        note_store(storage, 0, 0);
    }

    /// Records a store by allocation id only — the run-specialized path,
    /// which must have pinned the allocation via [`pin_storage`] first.
    #[inline]
    pub(crate) fn note_store_raw(id: usize, lo: usize, len: usize) {
        ACTIVE.with(|a| {
            if let Some(w) = a.borrow_mut().as_mut() {
                w.push(id, None, lo, len);
            }
        });
    }

    impl BlockWrites {
        fn push(&mut self, id: usize, storage: Option<&Arc<[AtomicU64]>>, lo: usize, len: usize) {
            let entry = match self.per_storage.iter_mut().find(|(i, _, _)| *i == id) {
                Some(e) => e,
                None => {
                    let Some(storage) = storage else {
                        debug_assert!(storage.is_some(), "raw store without pinned storage");
                        return;
                    };
                    self.per_storage.push((id, Arc::clone(storage), Vec::new()));
                    self.per_storage.last_mut().unwrap()
                }
            };
            if len == 0 {
                return;
            }
            let (lo, hi) = (lo, lo + len - 1);
            // Coalesce with the previous interval when adjacent or
            // overlapping (consecutive innermost-x stores).
            if let Some(last) = entry.2.last_mut() {
                if lo <= last.1.saturating_add(1) && last.0 <= hi.saturating_add(1) {
                    last.0 = last.0.min(lo);
                    last.1 = last.1.max(hi);
                    return;
                }
            }
            entry.2.push((lo, hi));
        }
    }

    /// Whole-run overlap checker for the dataflow scheduler.
    ///
    /// Dataflow execution has no levels to reset at, so disjointness is
    /// checked against the block *dependence graph* instead: any two
    /// blocks left **unordered** by the graph may run concurrently (at
    /// some thread count, under some timing), so they must write
    /// disjoint extents. Blocks ordered by a transitive dependence may
    /// freely reuse cells — the Acquire/Release edge of the in-degree
    /// handoff orders their writes.
    ///
    /// Ordering is decided from transitive-ancestor bitsets computed
    /// once per run, so verdicts are deterministic: the same module
    /// panics (or passes) identically at every thread count, including
    /// 1 — unlike a temporal check, which would only catch races that
    /// happened to manifest.
    pub struct GraphChecker {
        /// `ancestors[b]` bit `p` set iff block `p` is a transitive
        /// predecessor of `b` (all predecessors have lower flat index).
        ancestors: Vec<Vec<u64>>,
        done: Mutex<Vec<BlockWrites>>,
    }

    impl GraphChecker {
        /// A fresh checker for one dataflow run over `graph`.
        pub fn new(graph: &instencil_pattern::dataflow::BlockGraph) -> Self {
            let n = graph.num_blocks();
            let words = n.div_ceil(64);
            let mut ancestors: Vec<Vec<u64>> = Vec::with_capacity(n);
            for b in 0..n {
                let mut bits = vec![0u64; words];
                for &p in graph.predecessors(b) {
                    let p = p as usize;
                    // Predecessors precede `b` in flat order (deps are
                    // lexicographically negative), so ancestors[p] is
                    // already final.
                    for (w, a) in bits.iter_mut().zip(&ancestors[p]) {
                        *w |= a;
                    }
                    bits[p / 64] |= 1 << (p % 64);
                }
                ancestors.push(bits);
            }
            GraphChecker {
                ancestors,
                done: Mutex::new(Vec::new()),
            }
        }

        fn ordered(&self, a: usize, b: usize) -> bool {
            let has = |anc: &[u64], x: usize| anc[x / 64] >> (x % 64) & 1 == 1;
            has(&self.ancestors[b], a) || has(&self.ancestors[a], b)
        }

        /// Starts recording block `block` on the current thread; the
        /// returned guard commits and checks the write set on drop.
        pub fn guard(&self, block: usize) -> GraphGuard<'_> {
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                debug_assert!(a.is_none(), "nested overlap-checker blocks");
                *a = Some(BlockWrites {
                    block,
                    per_storage: Vec::new(),
                });
            });
            GraphGuard { checker: self }
        }

        fn commit(&self, mut writes: BlockWrites) {
            for (_, _, intervals) in &mut writes.per_storage {
                normalize(intervals);
            }
            let mut done = self.done.lock().unwrap();
            for prior in done.iter() {
                if self.ordered(prior.block, writes.block) {
                    continue;
                }
                for (id, _, intervals) in &writes.per_storage {
                    for (pid, _, prior_intervals) in &prior.per_storage {
                        if pid != id {
                            continue;
                        }
                        if let Some((lo, hi)) = intersect(intervals, prior_intervals) {
                            // Commit order is nondeterministic under
                            // concurrency; report the pair in block order.
                            let (a, b) = (
                                prior.block.min(writes.block),
                                prior.block.max(writes.block),
                            );
                            panic!(
                                "wavefront overlap: blocks {a} and {b} are \
                                 unordered by the block dependence graph and \
                                 both wrote flat extent [{lo}, {hi}] of one \
                                 allocation — the dependences violate Eq. (3) \
                                 disjointness"
                            );
                        }
                    }
                }
            }
            done.push(writes);
        }
    }

    /// RAII scope of one block's recording (see [`GraphChecker::guard`]).
    pub struct GraphGuard<'a> {
        checker: &'a GraphChecker,
    }

    impl Drop for GraphGuard<'_> {
        fn drop(&mut self) {
            let Some(writes) = ACTIVE.with(|a| a.borrow_mut().take()) else {
                return;
            };
            if std::thread::panicking() {
                return;
            }
            self.checker.commit(writes);
        }
    }

    /// Whole-batch overlap checker for sweep-batched dataflow runs.
    ///
    /// The checked universe is the `sweeps × num_blocks` grid of
    /// sweep-qualified block executions. Within one sweep the ordering
    /// relation is the block dependence graph, exactly as in
    /// [`GraphChecker`]. Across sweeps, block `b` of sweep `s+1` is
    /// ordered after `{b} ∪ succ(b)` of sweep `s` (the cross-sweep
    /// dependence pattern of the L/U in-place split), and transitively
    /// after everything those nodes dominate. Any pair of sweep-qualified
    /// executions left unordered by that relation may run concurrently
    /// under the batched drain, so their write intervals must be
    /// disjoint.
    ///
    /// Like [`GraphChecker`], verdicts come from transitive-ancestor
    /// bitsets computed once per batch, so a bad batched schedule panics
    /// deterministically at every thread count.
    pub struct SweepChecker {
        /// Blocks per sweep (node id = `sweep * n_blocks + block`).
        n_blocks: usize,
        /// `ancestors[node]` bit `p` set iff node `p` transitively
        /// precedes `node`. Node ids ascend topologically: intra-sweep
        /// predecessors have lower block index, cross-sweep predecessors
        /// live in the previous sweep.
        ancestors: Vec<Vec<u64>>,
        done: Mutex<Vec<BlockWrites>>,
    }

    impl SweepChecker {
        /// A fresh checker for one batch of `sweeps` identical sweeps
        /// over `graph`.
        pub fn new(graph: &instencil_pattern::dataflow::BlockGraph, sweeps: usize) -> Self {
            let n = graph.num_blocks();
            let nodes = n * sweeps;
            let words = nodes.div_ceil(64);
            let mut ancestors: Vec<Vec<u64>> = Vec::with_capacity(nodes);
            for node in 0..nodes {
                let (s, b) = (node / n, node % n);
                let mut bits = vec![0u64; words];
                let mut absorb = |p: usize, ancestors: &[Vec<u64>]| {
                    for (w, a) in bits.iter_mut().zip(&ancestors[p]) {
                        *w |= a;
                    }
                    bits[p / 64] |= 1 << (p % 64);
                };
                for &p in graph.predecessors(b) {
                    absorb(s * n + p as usize, &ancestors);
                }
                if s > 0 {
                    // Cross-sweep predecessors: the previous-sweep self
                    // node plus its lex-forward (successor) neighborhood.
                    absorb((s - 1) * n + b, &ancestors);
                    for &q in graph.successors(b) {
                        absorb((s - 1) * n + q as usize, &ancestors);
                    }
                }
                ancestors.push(bits);
            }
            SweepChecker {
                n_blocks: n,
                ancestors,
                done: Mutex::new(Vec::new()),
            }
        }

        fn ordered(&self, a: usize, b: usize) -> bool {
            let has = |anc: &[u64], x: usize| anc[x / 64] >> (x % 64) & 1 == 1;
            has(&self.ancestors[b], a) || has(&self.ancestors[a], b)
        }

        /// Starts recording block `block` of sweep `sweep` on the
        /// current thread; the returned guard commits and checks the
        /// write set on drop.
        pub fn guard(&self, sweep: usize, block: usize) -> SweepGuard<'_> {
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                debug_assert!(a.is_none(), "nested overlap-checker blocks");
                *a = Some(BlockWrites {
                    block: sweep * self.n_blocks + block,
                    per_storage: Vec::new(),
                });
            });
            SweepGuard { checker: self }
        }

        fn commit(&self, mut writes: BlockWrites) {
            for (_, _, intervals) in &mut writes.per_storage {
                normalize(intervals);
            }
            let mut done = self.done.lock().unwrap();
            for prior in done.iter() {
                if self.ordered(prior.block, writes.block) {
                    continue;
                }
                for (id, _, intervals) in &writes.per_storage {
                    for (pid, _, prior_intervals) in &prior.per_storage {
                        if pid != id {
                            continue;
                        }
                        if let Some((lo, hi)) = intersect(intervals, prior_intervals) {
                            let (a, b) = (
                                prior.block.min(writes.block),
                                prior.block.max(writes.block),
                            );
                            let n = self.n_blocks;
                            panic!(
                                "sweep-batch overlap: block {} of sweep {} and \
                                 block {} of sweep {} are unordered by the \
                                 sweep-extended dependence graph and both wrote \
                                 flat extent [{lo}, {hi}] of one allocation",
                                a % n,
                                a / n,
                                b % n,
                                b / n,
                            );
                        }
                    }
                }
            }
            done.push(writes);
        }
    }

    /// RAII scope of one sweep-qualified block's recording (see
    /// [`SweepChecker::guard`]).
    pub struct SweepGuard<'a> {
        checker: &'a SweepChecker,
    }

    impl Drop for SweepGuard<'_> {
        fn drop(&mut self) {
            let Some(writes) = ACTIVE.with(|a| a.borrow_mut().take()) else {
                return;
            };
            if std::thread::panicking() {
                return;
            }
            self.checker.commit(writes);
        }
    }

    /// Sorts and merges an interval list in place.
    fn normalize(intervals: &mut Vec<(usize, usize)>) {
        intervals.sort_unstable();
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(intervals.len());
        for &(lo, hi) in intervals.iter() {
            if let Some(last) = out.last_mut() {
                if lo <= last.1.saturating_add(1) {
                    last.1 = last.1.max(hi);
                    continue;
                }
            }
            out.push((lo, hi));
        }
        *intervals = out;
    }

    /// First intersection of two sorted, merged interval lists.
    fn intersect(a: &[(usize, usize)], b: &[(usize, usize)]) -> Option<(usize, usize)> {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let lo = a[i].0.max(b[j].0);
            let hi = a[i].1.min(b[j].1);
            if lo <= hi {
                return Some((lo, hi));
            }
            if a[i].1 < b[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        None
    }
}

/// Release builds: the overlap checker compiles out entirely (the guard
/// is a ZST and every recording call is an empty inline function).
#[cfg(not(debug_assertions))]
pub mod overlap {
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// No-op stand-in for the debug checker.
    #[derive(Default)]
    pub struct LevelChecker;

    /// No-op guard.
    pub struct BlockGuard;

    impl LevelChecker {
        /// A fresh (no-op) checker.
        pub fn new() -> Self {
            Self
        }

        /// No-op block scope.
        #[inline]
        pub fn guard(&self, _block: usize) -> BlockGuard {
            BlockGuard
        }
    }

    /// No-op stand-in for the debug dataflow checker.
    pub struct GraphChecker;

    /// No-op guard.
    pub struct GraphGuard;

    impl GraphChecker {
        /// A fresh (no-op) checker.
        #[inline]
        pub fn new(_graph: &instencil_pattern::dataflow::BlockGraph) -> Self {
            Self
        }

        /// No-op block scope.
        #[inline]
        pub fn guard(&self, _block: usize) -> GraphGuard {
            GraphGuard
        }
    }

    /// No-op stand-in for the debug sweep-batch checker.
    pub struct SweepChecker;

    /// No-op guard.
    pub struct SweepGuard;

    impl SweepChecker {
        /// A fresh (no-op) checker.
        #[inline]
        pub fn new(_graph: &instencil_pattern::dataflow::BlockGraph, _sweeps: usize) -> Self {
            Self
        }

        /// No-op block scope.
        #[inline]
        pub fn guard(&self, _sweep: usize, _block: usize) -> SweepGuard {
            SweepGuard
        }
    }

    #[inline(always)]
    pub(crate) fn note_store(_storage: &Arc<[AtomicU64]>, _lo: usize, _len: usize) {}

    #[allow(dead_code)] // debug-only call sites
    #[inline(always)]
    pub(crate) fn pin_storage(_storage: &Arc<[AtomicU64]>) {}

    #[allow(dead_code)] // debug-only call sites
    #[inline(always)]
    pub(crate) fn note_store_raw(_id: usize, _lo: usize, _len: usize) {}
}

impl fmt::Debug for BufferView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BufferView(shape={:?}, origin={:?}, base={})",
            self.shape, self.origin, self.base
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed() {
        let b = BufferView::alloc(&[2, 3]);
        assert_eq!(b.to_vec(), vec![0.0; 6]);
        assert_eq!(b.dim(0), 2);
        assert_eq!(b.rank(), 2);
    }

    #[test]
    fn load_store_roundtrip() {
        let b = BufferView::alloc(&[3, 4]);
        b.store(&[1, 2], 7.5);
        assert_eq!(b.load(&[1, 2]), 7.5);
        assert_eq!(b.load(&[1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let b = BufferView::alloc(&[2, 2]);
        let _ = b.load(&[2, 0]);
    }

    #[test]
    fn vector_access_contiguous() {
        let b = BufferView::from_data(&[2, 4], (0..8).map(f64::from).collect());
        assert_eq!(b.load_vector(&[1, 0], 4), vec![4.0, 5.0, 6.0, 7.0]);
        b.store_vector(&[0, 1], &[9.0, 8.0]);
        assert_eq!(b.to_vec()[..4], [0.0, 9.0, 8.0, 3.0]);
    }

    #[test]
    fn shift_view_global_coordinates() {
        // A 2x2 temp covering global window [3..5) x [10..12).
        let tmp = BufferView::alloc(&[2, 2]);
        let view = tmp.shift_view(&[3, 10]);
        view.store(&[3, 10], 1.0);
        view.store(&[4, 11], 2.0);
        assert_eq!(tmp.load(&[0, 0]), 1.0);
        assert_eq!(tmp.load(&[1, 1]), 2.0);
        assert!(view.aliases(&tmp));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shift_view_bounds() {
        let tmp = BufferView::alloc(&[2, 2]);
        let view = tmp.shift_view(&[3, 10]);
        let _ = view.load(&[2, 10]);
    }

    #[test]
    fn subview_windows() {
        let b = BufferView::from_data(&[3, 3], (0..9).map(f64::from).collect());
        let s = b.subview(&[1, 1], &[2, 2]);
        assert_eq!(s.to_vec(), vec![4.0, 5.0, 7.0, 8.0]);
        s.store(&[0, 0], -1.0);
        assert_eq!(b.load(&[1, 1]), -1.0);
    }

    #[test]
    fn copy_and_diff() {
        let a = BufferView::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = BufferView::alloc(&[2, 2]);
        b.copy_from(&a);
        assert_eq!(b.max_abs_diff(&a), 0.0);
        b.store(&[0, 1], 2.5);
        assert!((b.max_abs_diff(&a) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn fill_shifted_view() {
        let tmp = BufferView::alloc(&[2, 2]);
        let v = tmp.shift_view(&[5, 5]);
        v.fill(3.0);
        assert_eq!(tmp.to_vec(), vec![3.0; 4]);
    }

    #[test]
    fn disjoint_subviews_do_not_alias() {
        let b = BufferView::alloc(&[4, 8]);
        let top = b.subview(&[0, 0], &[2, 8]);
        let bottom = b.subview(&[2, 0], &[2, 8]);
        assert!(!top.aliases(&bottom), "disjoint halves must not alias");
        assert!(top.aliases(&b) && bottom.aliases(&b));
        // Overlapping windows still alias.
        let mid = b.subview(&[1, 0], &[2, 8]);
        assert!(top.aliases(&mid) && bottom.aliases(&mid));
        // Different allocations never alias.
        assert!(!b.aliases(&BufferView::alloc(&[4, 8])));
    }

    #[test]
    fn disjoint_row_segments_do_not_alias() {
        let b = BufferView::alloc(&[1, 16]);
        let left = b.subview(&[0, 0], &[1, 8]);
        let right = b.subview(&[0, 8], &[1, 8]);
        assert!(!left.aliases(&right));
        assert!(left.aliases(&left.shift_view(&[0, 3])));
    }

    #[test]
    fn empty_views_alias_nothing() {
        let b = BufferView::alloc(&[4, 4]);
        let empty = b.subview(&[1, 1], &[0, 2]);
        assert!(!empty.aliases(&b));
        assert!(!b.aliases(&empty));
        assert!(!empty.aliases(&empty));
    }

    #[test]
    fn load_iter_matches_load() {
        let b = BufferView::from_data(&[3, 4], (0..12).map(f64::from).collect());
        let v = b.subview(&[1, 1], &[2, 2]).shift_view(&[5, 5]);
        assert_eq!(v.load_iter([5i64, 6].into_iter()), v.load(&[5, 6]));
        v.store_iter([6i64, 5], -3.0);
        assert_eq!(v.load(&[6, 5]), -3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn load_iter_bounds_checked() {
        let b = BufferView::alloc(&[2, 2]);
        let _ = b.load_iter([0i64, 2]);
    }

    #[test]
    fn vector_fast_path_matches_strided_path() {
        // A subview keeps innermost stride 1 → fast path; compare against
        // per-lane scalar loads.
        let b = BufferView::from_data(&[4, 8], (0..32).map(f64::from).collect());
        let s = b.subview(&[1, 2], &[2, 5]);
        let mut out = [0.0; 4];
        s.load_vector_into(&[1, 1], &mut out);
        let expect: Vec<f64> = (0..4).map(|l| s.load(&[1, 1 + l])).collect();
        assert_eq!(out.to_vec(), expect);
        s.store_vector(&[0, 0], &[9.0, 8.0, 7.0]);
        assert_eq!(s.load(&[0, 0]), 9.0);
        assert_eq!(s.load(&[0, 2]), 7.0);
        assert_eq!(b.load(&[1, 2]), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn vector_run_past_view_edge_panics() {
        let b = BufferView::alloc(&[2, 4]);
        let _ = b.load_vector(&[0, 2], 4);
    }

    #[test]
    fn views_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferView>();
    }

    #[test]
    fn disjoint_writes_from_threads() {
        // The safe disjoint-sub-domain write path: two threads writing
        // complementary halves through aliasing subviews.
        let b = BufferView::alloc(&[2, 8]);
        let top = b.subview(&[0, 0], &[1, 8]);
        let bottom = b.subview(&[1, 0], &[1, 8]);
        std::thread::scope(|s| {
            s.spawn(|| {
                for j in 0..8 {
                    top.store(&[0, j], j as f64);
                }
            });
            s.spawn(|| {
                for j in 0..8 {
                    bottom.store(&[0, j], -(j as f64));
                }
            });
        });
        for j in 0..8i64 {
            assert_eq!(b.load(&[0, j]), j as f64);
            assert_eq!(b.load(&[1, j]), -(j as f64));
        }
    }
}
