//! Compiled bytecode execution of lowered stencil modules.
//!
//! The tree-walking [`crate::interp::Interpreter`] re-traverses
//! `Operation` structs, clones [`crate::value::RtVal`]s (a buffer operand
//! clone is three heap allocations), and allocates per grid point. That
//! makes it a fine *semantic oracle* and a terrible *clock*. This module
//! is the clock: [`super::compile::compile_program`] translates each
//! function **once** into flat register-machine instruction tapes
//! ([`Instr`]) with
//!
//! * pre-resolved register slots per SSA value (typed register files — no
//!   `RtVal` boxing, no environment vector of `Option`s),
//! * pre-resolved buffer bindings (buffer-valued SSA values live in a
//!   slot table; loads borrow the view instead of cloning it),
//! * a reusable scalar/vector scratch file (vector registers are lane
//!   ranges of one flat `f64` file — no `Vec<f64>` per vector op),
//! * direct opcode dispatch over a closed [`Instr`] enum (no string
//!   formatting, no attribute lookups on the hot path).
//!
//! Whole tiles and wavefront blocks are driven through the tapes by
//! [`BytecodeEngine`], which mirrors the interpreter's API (including the
//! `threads` knob: `scf.execute_wavefronts` levels run on the same
//! [`WavefrontPool`]) and counts the **same** [`ExecStats`] — results and
//! statistics are bit-identical to the interpreter, which the
//! `engine_equiv` differential tests enforce for every pipeline variant.

use std::sync::{Arc, Mutex};

use instencil_ir::{CmpPred, Module};
use instencil_obs::trace::{self, TraceKind};
use instencil_obs::Obs;
use instencil_pattern::dataflow::{self, Scheduler};
use instencil_pattern::CsrWavefronts;

use crate::buffer::BufferView;
use crate::compile::{compile_program, BcCompileError, BcOptions};
use crate::interp::ExecError;
use crate::parallel::WavefrontPool;
use crate::runspec::{self, RunScratch, RunSpec};
use crate::stats::ExecStats;
use crate::value::RtVal;

/// A typed register: class + slot in the class's file (vector registers
/// carry their lane-range start and width).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Reg {
    /// Scalar `f64` (also `f32`).
    F(u32),
    /// Integer / index / `i1` (booleans stored as 0/1).
    I(u32),
    /// Vector: `lanes` consecutive slots of the flat vector file at `off`.
    V {
        /// First lane slot.
        off: u32,
        /// Lane count.
        lanes: u32,
    },
    /// Buffer view slot.
    B(u32),
    /// Immutable `i64` array slot (CSR schedules).
    A(u32),
}

/// A register-to-register copy (same class on both sides).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Move {
    /// Destination register.
    pub dst: Reg,
    /// Source register.
    pub src: Reg,
}

/// Scalar/vector float binary operator.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FOp {
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
    Pow,
}

impl FOp {
    #[inline]
    pub(crate) fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            FOp::Add => x + y,
            FOp::Sub => x - y,
            FOp::Mul => x * y,
            FOp::Div => x / y,
            FOp::Max => x.max(y),
            FOp::Min => x.min(y),
            FOp::Pow => x.powf(y),
        }
    }
}

/// Scalar/vector float unary operator.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FUn {
    Neg,
    Sqrt,
    Abs,
    Exp,
}

impl FUn {
    #[inline]
    pub(crate) fn apply(self, x: f64) -> f64 {
        match self {
            FUn::Neg => -x,
            FUn::Sqrt => x.sqrt(),
            FUn::Abs => x.abs(),
            FUn::Exp => x.exp(),
        }
    }
}

/// Integer binary operator (division/remainder check for zero at run
/// time, exactly like the interpreter).
#[derive(Clone, Copy, Debug)]
pub(crate) enum IOp {
    Add,
    Sub,
    Mul,
    FloorDiv,
    CeilDiv,
    Rem,
    Min,
    Max,
}

/// One dimension of a `memref.alloc` shape.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DimSpec {
    /// Statically known extent.
    Static(usize),
    /// Extent read from an integer register.
    Dyn(u32),
}

/// One bytecode instruction. Registers are plain `u32` slots into the
/// class-specific files; `Box<[...]>` operand lists are built once at
/// compile time and only *read* on the hot path.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    ConstF {
        dst: u32,
        v: f64,
    },
    ConstI {
        dst: u32,
        v: i64,
    },
    ConstV {
        off: u32,
        lanes: u32,
        v: f64,
    },
    BinF {
        op: FOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    BinV {
        op: FOp,
        dst: u32,
        a: u32,
        b: u32,
        lanes: u32,
    },
    UnF {
        op: FUn,
        dst: u32,
        a: u32,
    },
    UnV {
        op: FUn,
        dst: u32,
        a: u32,
        lanes: u32,
    },
    FmaF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    FmaV {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        lanes: u32,
    },
    BinI {
        op: IOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpI {
        pred: CmpPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpF {
        pred: CmpPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    SelF {
        dst: u32,
        cond: u32,
        t: u32,
        e: u32,
    },
    SelI {
        dst: u32,
        cond: u32,
        t: u32,
        e: u32,
    },
    SelV {
        dst: u32,
        cond: u32,
        t: u32,
        e: u32,
        lanes: u32,
    },
    /// `arith.index_cast` (i64 ↔ index are both `i64` here).
    MoveI {
        dst: u32,
        src: u32,
    },
    SiToFp {
        dst: u32,
        src: u32,
    },
    For {
        lb: u32,
        ub: u32,
        step: u32,
        iv: u32,
        body: u32,
        /// Init-operand → iter-slot copies, run before the loop.
        inits: Box<[Move]>,
        /// Yield-register → iter-slot copies, run after each iteration.
        loopback: Box<[Move]>,
        /// Iter-slot → result-register copies, run after the loop.
        results: Box<[Move]>,
        /// Run specialization (DESIGN.md §4f): present when the body is
        /// a straight-line stencil point and the compiler built a
        /// [`RunSpec`] macro-op for it. The executor tries the
        /// specialized path first and falls back to the generic loop
        /// for short or unplannable runs.
        run: Option<Box<RunSpec>>,
    },
    If {
        cond: u32,
        then_body: u32,
        else_body: u32,
        then_res: Box<[Move]>,
        else_res: Box<[Move]>,
    },
    ParallelLoop {
        lb: u32,
        ub: u32,
        step: u32,
        iv: u32,
        body: u32,
    },
    Wavefronts {
        rows: u32,
        cols: u32,
        /// Integer register receiving the linearized block index.
        block: u32,
        body: u32,
    },
    GetParallelBlocks {
        dims: Box<[u32]>,
        /// Block dependences decoded from the `block_stencil` attribute at
        /// compile time (pure decode — hoisted off the execution path).
        deps: Box<[Vec<i64>]>,
        rows: u32,
        cols: u32,
    },
    Call {
        func: u32,
        args: Box<[Reg]>,
        results: Box<[Reg]>,
    },
    Alloc {
        dst: u32,
        dims: Box<[DimSpec]>,
    },
    Dim {
        dst: u32,
        buf: u32,
        dim: u32,
    },
    Load {
        dst: u32,
        buf: u32,
        idx: Box<[u32]>,
    },
    Store {
        src: u32,
        buf: u32,
        idx: Box<[u32]>,
    },
    Subview {
        dst: u32,
        src: u32,
        offs: Box<[u32]>,
        sizes: Box<[u32]>,
    },
    ShiftView {
        dst: u32,
        src: u32,
        shifts: Box<[u32]>,
    },
    CopyBuf {
        src: u32,
        dst: u32,
    },
    VLoad {
        dst: u32,
        lanes: u32,
        buf: u32,
        idx: Box<[u32]>,
    },
    VStore {
        src: u32,
        lanes: u32,
        buf: u32,
        idx: Box<[u32]>,
    },
    VExtract {
        dst: u32,
        src: u32,
        lane: u32,
    },
    VBroadcast {
        dst: u32,
        lanes: u32,
        src: u32,
    },
}

/// The kind of a function argument or result at the `RtVal` boundary.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RKind {
    F64,
    Int,
    Bool,
    Vec(u32),
    Buf,
    Arr,
}

/// One compiled single-block region: an instruction tape plus the
/// registers its terminator yields.
#[derive(Clone, Debug, Default)]
pub(crate) struct Tape {
    pub code: Vec<Instr>,
    /// Registers of the terminator operands (`scf.yield` /
    /// `func.return`), in order.
    pub term: Vec<Reg>,
}

/// One function compiled to tapes. `tapes[0]` is the entry block.
#[derive(Clone, Debug)]
pub(crate) struct BcFunc {
    pub name: String,
    pub tapes: Vec<Tape>,
    /// Entry-block argument registers, with their boundary kinds.
    pub args: Vec<(RKind, Reg)>,
    /// Boundary kinds of the results (parallel to `tapes[0].term`).
    pub results: Vec<RKind>,
    /// Register file sizes.
    pub num_f: u32,
    pub num_i: u32,
    pub num_v_slots: u32,
    pub num_b: u32,
    pub num_a: u32,
}

/// A whole module compiled to bytecode.
#[derive(Clone, Debug)]
pub(crate) struct BcProgram {
    pub funcs: Vec<BcFunc>,
}

impl BcProgram {
    pub(crate) fn lookup(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

/// Per-call register files: the whole mutable state of one frame. Cloned
/// per wavefront worker (flat `memcpy`-able vectors plus a slot table of
/// buffer views — far cheaper than cloning an `RtVal` environment).
#[derive(Clone, Debug)]
pub(crate) struct Regs {
    pub(crate) f: Vec<f64>,
    pub(crate) i: Vec<i64>,
    pub(crate) v: Vec<f64>,
    pub(crate) b: Vec<Option<BufferView>>,
    a: Vec<Option<Arc<Vec<i64>>>>,
    /// Reusable index scratch for scalar/vector memory access (no
    /// per-point allocation).
    scratch: Vec<i64>,
    /// Reusable run-specialization state (plans, stripes); `Clone`
    /// hands out empty scratch, so worker frames start fresh.
    rs: Box<RunScratch>,
}

impl Regs {
    fn new(func: &BcFunc) -> Self {
        Regs {
            f: vec![0.0; func.num_f as usize],
            i: vec![0; func.num_i as usize],
            v: vec![0.0; func.num_v_slots as usize],
            b: vec![None; func.num_b as usize],
            a: vec![None; func.num_a as usize],
            scratch: Vec::with_capacity(8),
            rs: Box::default(),
        }
    }

    /// Same-frame typed register copy.
    fn mv(&mut self, m: Move) {
        match (m.dst, m.src) {
            (Reg::F(d), Reg::F(s)) => self.f[d as usize] = self.f[s as usize],
            (Reg::I(d), Reg::I(s)) => self.i[d as usize] = self.i[s as usize],
            (Reg::V { off: d, lanes }, Reg::V { off: s, .. }) => {
                self.v
                    .copy_within(s as usize..(s + lanes) as usize, d as usize);
            }
            (Reg::B(d), Reg::B(s)) => self.b[d as usize] = self.b[s as usize].clone(),
            (Reg::A(d), Reg::A(s)) => self.a[d as usize] = self.a[s as usize].clone(),
            (d, s) => unreachable!("class-mismatched move {d:?} <- {s:?}"),
        }
    }

    fn buf(&self, slot: u32) -> Result<&BufferView, ExecError> {
        self.b[slot as usize]
            .as_ref()
            .ok_or_else(|| ExecError::new("use of unset buffer register"))
    }

    fn arr(&self, slot: u32) -> Result<&Arc<Vec<i64>>, ExecError> {
        self.a[slot as usize]
            .as_ref()
            .ok_or_else(|| ExecError::new("use of unset i64-array register"))
    }

    fn set_rtval(&mut self, reg: Reg, kind: RKind, val: RtVal) -> Result<(), ExecError> {
        match (kind, reg, val) {
            (RKind::F64, Reg::F(d), RtVal::F64(x)) => self.f[d as usize] = x,
            (RKind::Int, Reg::I(d), RtVal::Int(x)) => self.i[d as usize] = x,
            (RKind::Bool, Reg::I(d), RtVal::Bool(x)) => self.i[d as usize] = i64::from(x),
            (RKind::Vec(lanes), Reg::V { off, .. }, RtVal::Vec(x)) => {
                if x.len() != lanes as usize {
                    return Err(ExecError::new("vector argument lane mismatch"));
                }
                self.v[off as usize..(off + lanes) as usize].copy_from_slice(&x);
            }
            (RKind::Buf, Reg::B(d), RtVal::Buf(b)) => self.b[d as usize] = Some(b),
            (RKind::Arr, Reg::A(d), RtVal::I64Arr(a)) => self.a[d as usize] = Some(a),
            (_, _, other) => {
                return Err(ExecError::new(format!(
                    "argument kind mismatch: got {other:?}"
                )))
            }
        }
        Ok(())
    }

    fn get_rtval(&self, reg: Reg, kind: RKind) -> Result<RtVal, ExecError> {
        Ok(match (kind, reg) {
            (RKind::F64, Reg::F(s)) => RtVal::F64(self.f[s as usize]),
            (RKind::Int, Reg::I(s)) => RtVal::Int(self.i[s as usize]),
            (RKind::Bool, Reg::I(s)) => RtVal::Bool(self.i[s as usize] != 0),
            (RKind::Vec(lanes), Reg::V { off, .. }) => {
                RtVal::Vec(self.v[off as usize..(off + lanes) as usize].to_vec())
            }
            (RKind::Buf, Reg::B(s)) => RtVal::Buf(
                self.b[s as usize]
                    .clone()
                    .ok_or_else(|| ExecError::new("unset buffer result"))?,
            ),
            (RKind::Arr, Reg::A(s)) => RtVal::I64Arr(
                self.a[s as usize]
                    .clone()
                    .ok_or_else(|| ExecError::new("unset array result"))?,
            ),
            (k, r) => return Err(ExecError::new(format!("result kind mismatch {k:?}/{r:?}"))),
        })
    }
}

/// Copies a register value across frames (caller ↔ callee of
/// `func.call`).
fn cross_move(src_regs: &Regs, src: Reg, dst_regs: &mut Regs, dst: Reg) {
    match (dst, src) {
        (Reg::F(d), Reg::F(s)) => dst_regs.f[d as usize] = src_regs.f[s as usize],
        (Reg::I(d), Reg::I(s)) => dst_regs.i[d as usize] = src_regs.i[s as usize],
        (Reg::V { off: d, lanes }, Reg::V { off: s, .. }) => {
            dst_regs.v[d as usize..(d + lanes) as usize]
                .copy_from_slice(&src_regs.v[s as usize..(s + lanes) as usize]);
        }
        (Reg::B(d), Reg::B(s)) => dst_regs.b[d as usize] = src_regs.b[s as usize].clone(),
        (Reg::A(d), Reg::A(s)) => dst_regs.a[d as usize] = src_regs.a[s as usize].clone(),
        (d, s) => unreachable!("class-mismatched cross move {d:?} <- {s:?}"),
    }
}

/// The bytecode engine: a compiled program plus the same `stats` /
/// `threads` surface as [`crate::interp::Interpreter`]. Compile once,
/// call many times.
#[derive(Debug)]
pub struct BytecodeEngine {
    program: BcProgram,
    /// Accumulated dynamic statistics (identical to the interpreter's on
    /// the same module and inputs).
    pub stats: ExecStats,
    threads: usize,
    obs: Obs,
    scheduler: Scheduler,
    /// Run-specialization scratch retired by finished frames and handed
    /// to new ones, so plan caches survive across calls: the cache
    /// re-validates by spec address (stable — the specs live in
    /// `program`, owned by this engine for the pool's whole lifetime),
    /// run length, access signature, and invariant values, and patches
    /// every base and tile handle from the current frame's buffers on a
    /// hit. Without pooling, every call pays one cold plan build per
    /// specialized loop — at short-run geometries that cold build is
    /// the dominant per-point cost of the wide (vf) tapes.
    #[allow(clippy::vec_box)] // boxed on purpose: frames hold `Box<RunScratch>`,
    // so pool push/pop transfers one pointer instead of moving the arena struct
    scratch_pool: Mutex<Vec<Box<RunScratch>>>,
}

impl BytecodeEngine {
    /// Compiles every function of `module` to bytecode (sequential
    /// wavefront execution).
    ///
    /// # Errors
    /// Returns [`BcCompileError`] when the module contains ops outside
    /// the lowered subset (e.g. structured `cfd.stencil` reference ops —
    /// those stay on the tree-walking interpreter).
    pub fn compile(module: &Module) -> Result<Self, BcCompileError> {
        Self::compile_with_threads(module, 1)
    }

    /// [`BytecodeEngine::compile`] with a wavefront worker count.
    ///
    /// # Errors
    /// See [`BytecodeEngine::compile`].
    pub fn compile_with_threads(module: &Module, threads: usize) -> Result<Self, BcCompileError> {
        Self::compile_with_obs(module, threads, Obs::off())
    }

    /// [`BytecodeEngine::compile_with_threads`] recording wavefront and
    /// schedule timings into `obs`.
    ///
    /// # Errors
    /// See [`BytecodeEngine::compile`].
    pub fn compile_with_obs(
        module: &Module,
        threads: usize,
        obs: Obs,
    ) -> Result<Self, BcCompileError> {
        Self::compile_with_opts(module, threads, obs, BcOptions::default())
    }

    /// [`BytecodeEngine::compile_with_obs`] with explicit compile
    /// options — `opts.specialize_runs = false` forces dispatch-per-point
    /// execution (the pre-§4f engine), kept for differential tests and
    /// the engines bench.
    ///
    /// # Errors
    /// See [`BytecodeEngine::compile`].
    pub fn compile_with_opts(
        module: &Module,
        threads: usize,
        obs: Obs,
        opts: BcOptions,
    ) -> Result<Self, BcCompileError> {
        Ok(BytecodeEngine {
            program: compile_program(module, opts, &obs)?,
            stats: ExecStats::default(),
            threads: threads.max(1),
            obs,
            scheduler: Scheduler::Levels,
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// Selects the wavefront scheduler mode (a pure runtime knob — the
    /// compiled program is unchanged; results are bit-identical).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The wavefront worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wavefront scheduler mode.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Calls a compiled function by name.
    ///
    /// # Errors
    /// Fails when the function is missing, arity/kind mismatches, or a
    /// runtime check (division by zero, unset register) trips.
    pub fn call(&mut self, name: &str, args: Vec<RtVal>) -> Result<Vec<RtVal>, ExecError> {
        let fi = self
            .program
            .lookup(name)
            .ok_or_else(|| ExecError::new(format!("no function `{name}`")))?;
        let ctx = BcCtx {
            program: &self.program,
            pool: WavefrontPool::with_opts(self.threads, self.obs.clone(), self.scheduler),
            scratch: &self.scratch_pool,
        };
        let mut stats = ExecStats::default();
        let out = ctx.call(fi, args, &mut stats);
        // Merge even on error so partially executed work is accounted.
        self.stats.merge(&stats);
        out
    }

    /// Calls a compiled function `sweeps` times over the same arguments
    /// as one fused dataflow drain of the sweep-extended dependence
    /// graph, returning the last call's results. Semantically identical
    /// to `sweeps` back-to-back [`Self::call`]s (buffers are updated in
    /// place through the shared views; statistics match too), but block
    /// `b` of sweep `s+1` starts as soon as its lex-forward neighborhood
    /// of sweep `s` retires — the per-call fixed costs (frame setup,
    /// pool construction, prefix re-execution, schedule lookup) are paid
    /// once per batch instead of once per sweep.
    ///
    /// Batching requires the entry tape to be a *pure prefix* (register
    /// arithmetic, views, `cfd.get_parallel_blocks`) ending in exactly
    /// one `scf.execute_wavefronts`; any other shape — or a schedule not
    /// minted by the bundle cache — falls back to eager calls and
    /// reports a `sweep-batch-fallback` obs event.
    ///
    /// # Errors
    /// As [`Self::call`]; the first failing sweep aborts the batch.
    pub fn call_sweeps(
        &mut self,
        name: &str,
        args: Vec<RtVal>,
        sweeps: usize,
    ) -> Result<Vec<RtVal>, ExecError> {
        if sweeps == 0 {
            return Err(ExecError::new("sweep batch needs at least one sweep"));
        }
        if sweeps == 1 {
            return self.call(name, args);
        }
        let fi = self
            .program
            .lookup(name)
            .ok_or_else(|| ExecError::new(format!("no function `{name}`")))?;
        if batchable_wavefronts(&self.program.funcs[fi]).is_none() {
            self.obs
                .event("sweep-batch-fallback", "entry tape is not a pure wavefront sweep");
            let mut out = Vec::new();
            for _ in 0..sweeps {
                out = self.call(name, args.clone())?;
            }
            return Ok(out);
        }
        let ctx = BcCtx {
            program: &self.program,
            pool: WavefrontPool::with_opts(self.threads, self.obs.clone(), self.scheduler),
            scratch: &self.scratch_pool,
        };
        let mut stats = ExecStats::default();
        let out = ctx.call_batched(fi, args, sweeps, &mut stats);
        self.stats.merge(&stats);
        out
    }
}

/// The trailing `Instr::Wavefronts` of `func`'s entry tape, when the
/// function is sweep-batchable: the wavefront sweep must be the last
/// instruction, and everything before it must be re-executable without
/// observing buffer contents — register arithmetic, constants, view
/// construction, `memref.dim`, and the (cached, pure) schedule
/// computation. Buffer loads are excluded on purpose: a prefix that read
/// a cell the sweep overwrites would see different values on the second
/// eager call, so batching it would not be equivalent.
fn batchable_wavefronts(func: &BcFunc) -> Option<(u32, u32, u32, u32)> {
    let code = &func.tapes[0].code;
    let Some(Instr::Wavefronts {
        rows,
        cols,
        block,
        body,
    }) = code.last()
    else {
        return None;
    };
    code[..code.len() - 1]
        .iter()
        .all(|i| {
            matches!(
                i,
                Instr::ConstF { .. }
                    | Instr::ConstI { .. }
                    | Instr::ConstV { .. }
                    | Instr::BinF { .. }
                    | Instr::BinV { .. }
                    | Instr::UnF { .. }
                    | Instr::UnV { .. }
                    | Instr::FmaF { .. }
                    | Instr::FmaV { .. }
                    | Instr::BinI { .. }
                    | Instr::CmpI { .. }
                    | Instr::CmpF { .. }
                    | Instr::SelF { .. }
                    | Instr::SelI { .. }
                    | Instr::SelV { .. }
                    | Instr::MoveI { .. }
                    | Instr::SiToFp { .. }
                    | Instr::Dim { .. }
                    | Instr::GetParallelBlocks { .. }
                    | Instr::Subview { .. }
                    | Instr::ShiftView { .. }
                    | Instr::VExtract { .. }
                    | Instr::VBroadcast { .. }
            )
        })
        .then_some((*rows, *cols, *block, *body))
}

/// Read-only execution context shared by all threads.
struct BcCtx<'p> {
    program: &'p BcProgram,
    pool: WavefrontPool,
    /// The engine's cross-call [`RunScratch`] pool (see the field doc on
    /// [`BytecodeEngine`]). Frames pop a warm scratch on entry and push
    /// it back when they finish.
    #[allow(clippy::vec_box)] // see `BytecodeEngine::scratch_pool`
    scratch: &'p Mutex<Vec<Box<RunScratch>>>,
}

impl BcCtx<'_> {
    fn call(
        &self,
        fi: usize,
        args: Vec<RtVal>,
        stats: &mut ExecStats,
    ) -> Result<Vec<RtVal>, ExecError> {
        let func = &self.program.funcs[fi];
        if args.len() != func.args.len() {
            return Err(ExecError::new(format!(
                "`{}` expects {} args, got {}",
                func.name,
                func.args.len(),
                args.len()
            )));
        }
        // Trace events emitted on the calling thread outside the
        // wavefront worker loops (plan-cache activity of straight-line
        // runs) land on the driver lane; workers install their own
        // tracers over this one for the duration of a parallel region.
        let _tracer = trace::install(self.pool.obs().worker_tracer(trace::DRIVER));
        let mut regs = Regs::new(func);
        if let Some(rs) = self.scratch.lock().unwrap().pop() {
            regs.rs = rs;
        }
        for ((kind, reg), val) in func.args.iter().zip(args) {
            regs.set_rtval(*reg, *kind, val)?;
        }
        let run = self.run_tape(func, 0, &mut regs, stats);
        self.scratch
            .lock()
            .unwrap()
            .push(std::mem::take(&mut regs.rs));
        run?;
        func.tapes[0]
            .term
            .iter()
            .zip(&func.results)
            .map(|(&r, &k)| regs.get_rtval(r, k))
            .collect()
    }

    /// One frame driving `sweeps` fused wavefront sweeps: runs the pure
    /// prefix of the entry tape once (accounting its statistics `sweeps`
    /// times, matching what eager re-execution would have counted), then
    /// drains the trailing `scf.execute_wavefronts` through the
    /// sweep-extended graph. The caller has verified the shape via
    /// [`batchable_wavefronts`].
    fn call_batched(
        &self,
        fi: usize,
        args: Vec<RtVal>,
        sweeps: usize,
        stats: &mut ExecStats,
    ) -> Result<Vec<RtVal>, ExecError> {
        let func = &self.program.funcs[fi];
        if args.len() != func.args.len() {
            return Err(ExecError::new(format!(
                "`{}` expects {} args, got {}",
                func.name,
                func.args.len(),
                args.len()
            )));
        }
        let (rows, cols, block, body) =
            batchable_wavefronts(func).expect("caller checked batchability");
        let _tracer = trace::install(self.pool.obs().worker_tracer(trace::DRIVER));
        let mut regs = Regs::new(func);
        if let Some(rs) = self.scratch.lock().unwrap().pop() {
            regs.rs = rs;
        }
        for ((kind, reg), val) in func.args.iter().zip(args) {
            regs.set_rtval(*reg, *kind, val)?;
        }
        // The prefix is pure, so its single execution computes the same
        // registers every eager call would have; its stats merge ×k so
        // counters stay batching-invariant.
        let mut prefix_stats = ExecStats::default();
        let prefix_len = func.tapes[0].code.len() - 1;
        let run = self
            .run_tape_prefix(func, 0, prefix_len, &mut regs, &mut prefix_stats)
            .and_then(|()| {
                for _ in 0..sweeps {
                    stats.merge(&prefix_stats);
                }
                self.exec_wavefronts_batched(func, rows, cols, block, body, sweeps, &mut regs, stats)
            });
        self.scratch
            .lock()
            .unwrap()
            .push(std::mem::take(&mut regs.rs));
        run?;
        func.tapes[0]
            .term
            .iter()
            .zip(&func.results)
            .map(|(&r, &k)| regs.get_rtval(r, k))
            .collect()
    }

    /// Executes one tape over the frame's registers. The inner loop is a
    /// direct match over [`Instr`] — no value boxing, no allocation.
    fn run_tape(
        &self,
        func: &BcFunc,
        tape: u32,
        regs: &mut Regs,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        self.run_tape_prefix(func, tape, func.tapes[tape as usize].code.len(), regs, stats)
    }

    /// [`Self::run_tape`] over the first `count` instructions only — the
    /// sweep-batched call path runs the pure prefix of the entry tape
    /// once, then drives the trailing `Instr::Wavefronts` itself.
    #[allow(clippy::too_many_lines)]
    fn run_tape_prefix(
        &self,
        func: &BcFunc,
        tape: u32,
        count: usize,
        regs: &mut Regs,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        for instr in &func.tapes[tape as usize].code[..count] {
            match instr {
                Instr::ConstF { dst, v } => regs.f[*dst as usize] = *v,
                Instr::ConstI { dst, v } => regs.i[*dst as usize] = *v,
                Instr::ConstV { off, lanes, v } => {
                    regs.v[*off as usize..(*off + *lanes) as usize].fill(*v);
                }
                Instr::BinF { op, dst, a, b } => {
                    stats.scalar_flops += 1;
                    regs.f[*dst as usize] = op.apply(regs.f[*a as usize], regs.f[*b as usize]);
                }
                Instr::BinV {
                    op,
                    dst,
                    a,
                    b,
                    lanes,
                } => {
                    stats.vector_flops += 1;
                    for l in 0..*lanes as usize {
                        regs.v[*dst as usize + l] =
                            op.apply(regs.v[*a as usize + l], regs.v[*b as usize + l]);
                    }
                }
                Instr::UnF { op, dst, a } => {
                    stats.scalar_flops += 1;
                    regs.f[*dst as usize] = op.apply(regs.f[*a as usize]);
                }
                Instr::UnV { op, dst, a, lanes } => {
                    stats.vector_flops += 1;
                    for l in 0..*lanes as usize {
                        regs.v[*dst as usize + l] = op.apply(regs.v[*a as usize + l]);
                    }
                }
                Instr::FmaF { dst, a, b, c } => {
                    stats.scalar_flops += 1;
                    regs.f[*dst as usize] =
                        regs.f[*a as usize].mul_add(regs.f[*b as usize], regs.f[*c as usize]);
                }
                Instr::FmaV {
                    dst,
                    a,
                    b,
                    c,
                    lanes,
                } => {
                    stats.vector_flops += 1;
                    for l in 0..*lanes as usize {
                        regs.v[*dst as usize + l] = regs.v[*a as usize + l]
                            .mul_add(regs.v[*b as usize + l], regs.v[*c as usize + l]);
                    }
                }
                Instr::BinI { op, dst, a, b } => {
                    stats.index_ops += 1;
                    let a = regs.i[*a as usize];
                    let b = regs.i[*b as usize];
                    regs.i[*dst as usize] = match op {
                        IOp::Add => a + b,
                        IOp::Sub => a - b,
                        IOp::Mul => a * b,
                        IOp::FloorDiv => {
                            if b == 0 {
                                return Err(ExecError::new("division by zero"));
                            }
                            a.div_euclid(b)
                        }
                        IOp::CeilDiv => {
                            if b == 0 {
                                return Err(ExecError::new("division by zero"));
                            }
                            (a + b - 1).div_euclid(b)
                        }
                        IOp::Rem => {
                            if b == 0 {
                                return Err(ExecError::new("remainder by zero"));
                            }
                            a.rem_euclid(b)
                        }
                        IOp::Min => a.min(b),
                        IOp::Max => a.max(b),
                    };
                }
                Instr::CmpI { pred, dst, a, b } => {
                    regs.i[*dst as usize] =
                        i64::from(pred.eval_int(regs.i[*a as usize], regs.i[*b as usize]));
                }
                Instr::CmpF { pred, dst, a, b } => {
                    regs.i[*dst as usize] =
                        i64::from(pred.eval_float(regs.f[*a as usize], regs.f[*b as usize]));
                }
                Instr::SelF { dst, cond, t, e } => {
                    let s = if regs.i[*cond as usize] != 0 { t } else { e };
                    regs.f[*dst as usize] = regs.f[*s as usize];
                }
                Instr::SelI { dst, cond, t, e } => {
                    let s = if regs.i[*cond as usize] != 0 { t } else { e };
                    regs.i[*dst as usize] = regs.i[*s as usize];
                }
                Instr::SelV {
                    dst,
                    cond,
                    t,
                    e,
                    lanes,
                } => {
                    let s = if regs.i[*cond as usize] != 0 { t } else { e };
                    regs.v
                        .copy_within(*s as usize..(*s + *lanes) as usize, *dst as usize);
                }
                Instr::MoveI { dst, src } => regs.i[*dst as usize] = regs.i[*src as usize],
                Instr::SiToFp { dst, src } => {
                    regs.f[*dst as usize] = regs.i[*src as usize] as f64;
                }
                Instr::For {
                    lb,
                    ub,
                    step,
                    iv,
                    body,
                    inits,
                    loopback,
                    results,
                    run,
                } => {
                    let lb = regs.i[*lb as usize];
                    let ub = regs.i[*ub as usize];
                    let step = regs.i[*step as usize];
                    if step <= 0 {
                        return Err(ExecError::new("scf.for requires a positive step"));
                    }
                    if let Some(spec) = run {
                        debug_assert!(
                            inits.is_empty() && loopback.is_empty() && results.is_empty(),
                            "run specialization requires a loop without iter args"
                        );
                        if self.exec_run(spec, lb, ub, step, *iv, regs, stats) {
                            continue;
                        }
                    }
                    for m in inits.iter() {
                        regs.mv(*m);
                    }
                    let mut i = lb;
                    while i < ub {
                        regs.i[*iv as usize] = i;
                        self.run_tape(func, *body, regs, stats)?;
                        for m in loopback.iter() {
                            regs.mv(*m);
                        }
                        i += step;
                    }
                    for m in results.iter() {
                        regs.mv(*m);
                    }
                }
                Instr::If {
                    cond,
                    then_body,
                    else_body,
                    then_res,
                    else_res,
                } => {
                    let (body, moves) = if regs.i[*cond as usize] != 0 {
                        (*then_body, then_res)
                    } else {
                        (*else_body, else_res)
                    };
                    self.run_tape(func, body, regs, stats)?;
                    for m in moves.iter() {
                        regs.mv(*m);
                    }
                }
                Instr::ParallelLoop {
                    lb,
                    ub,
                    step,
                    iv,
                    body,
                } => {
                    let lb = regs.i[*lb as usize];
                    let ub = regs.i[*ub as usize];
                    let step = regs.i[*step as usize];
                    if step <= 0 {
                        return Err(ExecError::new("scf.parallel requires a positive step"));
                    }
                    let mut i = lb;
                    while i < ub {
                        regs.i[*iv as usize] = i;
                        self.run_tape(func, *body, regs, stats)?;
                        i += step;
                    }
                }
                Instr::Wavefronts {
                    rows,
                    cols,
                    block,
                    body,
                } => {
                    self.exec_wavefronts(func, *rows, *cols, *block, *body, regs, stats)?;
                }
                Instr::GetParallelBlocks {
                    dims,
                    deps,
                    rows,
                    cols,
                } => {
                    let grid: Vec<usize> = dims
                        .iter()
                        .map(|&r| regs.i[r as usize].max(1) as usize)
                        .collect();
                    let mut span = self.pool.obs().span("run:schedule");
                    // Cached per (grid, deps) process-wide; the Arc
                    // identity of `cols` lets `exec_wavefronts` recover
                    // the dependence graph for dataflow mode.
                    let bundle = dataflow::schedule_bundle(&grid, deps.as_ref());
                    span.note("levels", bundle.csr.num_levels() as i64);
                    span.note("blocks", grid.iter().product::<usize>() as i64);
                    drop(span);
                    stats.schedules_computed += 1;
                    regs.a[*rows as usize] = Some(Arc::clone(&bundle.rows));
                    regs.a[*cols as usize] = Some(Arc::clone(&bundle.cols));
                }
                Instr::Call {
                    func: callee_idx,
                    args,
                    results,
                } => {
                    let callee = &self.program.funcs[*callee_idx as usize];
                    let mut callee_regs = Regs::new(callee);
                    if let Some(rs) = self.scratch.lock().unwrap().pop() {
                        callee_regs.rs = rs;
                    }
                    for (&src, (_, dst)) in args.iter().zip(&callee.args) {
                        cross_move(regs, src, &mut callee_regs, *dst);
                    }
                    let run = self.run_tape(callee, 0, &mut callee_regs, stats);
                    self.scratch
                        .lock()
                        .unwrap()
                        .push(std::mem::take(&mut callee_regs.rs));
                    run?;
                    let term = &callee.tapes[0].term;
                    for (&src, &dst) in term.iter().zip(results.iter()) {
                        cross_move(&callee_regs, src, regs, dst);
                    }
                }
                Instr::Alloc { dst, dims } => {
                    let shape: Vec<usize> = dims
                        .iter()
                        .map(|d| match d {
                            DimSpec::Static(n) => *n,
                            DimSpec::Dyn(r) => regs.i[*r as usize] as usize,
                        })
                        .collect();
                    regs.b[*dst as usize] = Some(BufferView::alloc(&shape));
                }
                Instr::Dim { dst, buf, dim } => {
                    regs.i[*dst as usize] = regs.buf(*buf)?.dim(*dim as usize) as i64;
                }
                Instr::Load { dst, buf, idx } => {
                    stats.loads += 1;
                    let b = regs.b[*buf as usize]
                        .as_ref()
                        .ok_or_else(|| ExecError::new("use of unset buffer register"))?;
                    let v = b.load_iter(idx.iter().map(|&r| regs.i[r as usize]));
                    regs.f[*dst as usize] = v;
                }
                Instr::Store { src, buf, idx } => {
                    stats.stores += 1;
                    let v = regs.f[*src as usize];
                    let b = regs.b[*buf as usize]
                        .as_ref()
                        .ok_or_else(|| ExecError::new("use of unset buffer register"))?;
                    b.store_iter(idx.iter().map(|&r| regs.i[r as usize]), v);
                }
                Instr::Subview {
                    dst,
                    src,
                    offs,
                    sizes,
                } => {
                    regs.scratch.clear();
                    for &r in offs.iter() {
                        regs.scratch.push(regs.i[r as usize]);
                    }
                    let sizes: Vec<usize> = sizes
                        .iter()
                        .map(|&r| regs.i[r as usize] as usize)
                        .collect();
                    let view = regs.buf(*src)?.subview(&regs.scratch, &sizes);
                    regs.b[*dst as usize] = Some(view);
                }
                Instr::ShiftView { dst, src, shifts } => {
                    regs.scratch.clear();
                    for &r in shifts.iter() {
                        regs.scratch.push(regs.i[r as usize]);
                    }
                    let view = regs.buf(*src)?.shift_view(&regs.scratch);
                    regs.b[*dst as usize] = Some(view);
                }
                Instr::CopyBuf { src, dst } => {
                    regs.buf(*dst)?.copy_from(regs.buf(*src)?);
                }
                Instr::VLoad {
                    dst,
                    lanes,
                    buf,
                    idx,
                } => {
                    stats.vector_loads += 1;
                    regs.scratch.clear();
                    for &r in idx.iter() {
                        regs.scratch.push(regs.i[r as usize]);
                    }
                    let b = regs.b[*buf as usize]
                        .as_ref()
                        .ok_or_else(|| ExecError::new("use of unset buffer register"))?;
                    let out = &mut regs.v[*dst as usize..(*dst + *lanes) as usize];
                    b.load_vector_into(&regs.scratch, out);
                }
                Instr::VStore {
                    src,
                    lanes,
                    buf,
                    idx,
                } => {
                    stats.vector_stores += 1;
                    regs.scratch.clear();
                    for &r in idx.iter() {
                        regs.scratch.push(regs.i[r as usize]);
                    }
                    let b = regs.b[*buf as usize]
                        .as_ref()
                        .ok_or_else(|| ExecError::new("use of unset buffer register"))?;
                    let vals = &regs.v[*src as usize..(*src + *lanes) as usize];
                    b.store_vector(&regs.scratch, vals);
                }
                Instr::VExtract { dst, src, lane } => {
                    regs.f[*dst as usize] = regs.v[(*src + *lane) as usize];
                }
                Instr::VBroadcast { dst, lanes, src } => {
                    let s = regs.f[*src as usize];
                    regs.v[*dst as usize..(*dst + *lanes) as usize].fill(s);
                }
            }
        }
        Ok(())
    }

    /// Executes one specialized run (`n` innermost-loop iterations in a
    /// single dispatch). Returns `false` — with the frame untouched
    /// apart from body-local probe registers, which the generic loop
    /// recomputes anyway — when the run is too short or cannot be
    /// planned (probe error, unset buffer); the caller then takes the
    /// generic point-by-point path, reproducing identical results,
    /// statistics, and error behavior.
    ///
    /// Out-of-range accesses panic here (at the run endpoints) instead
    /// of at the offending iteration; success paths are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn exec_run(
        &self,
        spec: &RunSpec,
        lb: i64,
        ub: i64,
        step: i64,
        iv: u32,
        regs: &mut Regs,
        stats: &mut ExecStats,
    ) -> bool {
        if ub <= lb {
            return false;
        }
        let n = ((ub - lb + step - 1) / step) as usize;
        if n < runspec::MIN_RUN {
            return false;
        }
        // Negative plan-cache entry: a loop that failed probing or
        // buffer resolution once will fail the same way every sweep
        // (those depend on the spec and the frame's buffer bindings,
        // not on n), so skip straight to the always-correct generic
        // path instead of re-paying the probe + resolve cost each run.
        let spec_addr = spec as *const RunSpec as usize;
        if regs.rs.declined.contains(&spec_addr) {
            return false;
        }
        let timing = runspec::phase_timing::enabled();
        let t_probe = timing.then(std::time::Instant::now);
        // Probe the body's integer/constant subset at `lb`, then
        // re-evaluate only its iv-dependent part at `lb + step`; the
        // index deltas resolve every access to base + t·delta form.
        // The probe counts no stats — the real counts are bulk-added
        // below, identical to n generic iterations. Probe errors (e.g.
        // division by zero) fall back so the generic loop raises them
        // with exact accounting.
        let mut rs = std::mem::take(&mut regs.rs);
        regs.i[iv as usize] = lb;
        if !runspec::run_probe(&spec.probe, regs) {
            rs.declined.push(spec_addr);
            regs.rs = rs;
            return false;
        }
        rs.idx0.clear();
        rs.idx0.extend(spec.idx_regs.iter().map(|&r| regs.i[r as usize]));
        regs.i[iv as usize] = lb + step;
        if !runspec::run_probe(&spec.probe_iv, regs) {
            rs.declined.push(spec_addr);
            regs.rs = rs;
            return false;
        }
        rs.idx1.clear();
        rs.idx1.extend(spec.idx_regs.iter().map(|&r| regs.i[r as usize]));
        // Resolve each merged access-table entry: flat base at t = 0,
        // per-iteration flat delta, raw tile view. Both run endpoints
        // go through the checked indexing path — every per-dimension
        // index is linear in t, so in-bounds endpoints (at lanes 0 and
        // `lanes − 1`) bound all n iterations of every member access.
        // The table collapses lane-unrolled access groups, so the
        // per-run resolve/compare/patch cost is per *group*, not per
        // unrolled op.
        rs.tab.clear();
        let mut cursor = 0usize;
        for (ti, a) in spec.accs.iter().enumerate() {
            let Some(view) = regs.b[a.buf as usize].as_ref() else {
                rs.declined.push(spec_addr);
                regs.rs = rs;
                return false;
            };
            let i0 = &rs.idx0[cursor..cursor + a.idx.len()];
            let i1 = &rs.idx1[cursor..cursor + a.idx.len()];
            cursor += a.idx.len();
            let (base, delta, lane_stride) = view.resolve_run_lanes(i0, i1, n, a.lanes as usize);
            #[cfg(debug_assertions)]
            if a.store {
                crate::buffer::overlap::pin_storage(view.storage());
            }
            rs.tab.push(runspec::AccessPlan {
                base,
                delta,
                lane_stride,
                lanes: a.lanes,
                tile: view.tile_view(),
                pos: ti as u32,
                store: a.store,
            });
        }
        let t_plan = timing.then(std::time::Instant::now);
        let hit = runspec::build_plan(spec, n, &regs.f, &regs.v, &mut rs);
        let t_exec = timing.then(std::time::Instant::now);
        if self.pool.obs().detail_enabled() {
            // Consecutive hits coalesce into one event (a tail compare,
            // no clock read), keeping the per-run Trace cost flat; the
            // compile duration itself is emitted inside `build_plan`.
            let spec_id = (spec_addr >> 4) as u32;
            if hit {
                trace::coalesce(TraceKind::PlanHit, spec_id);
            } else {
                trace::instant(TraceKind::PlanMiss, spec_id, n as u32);
            }
        }
        let mut t0 = 0usize;
        while t0 < n {
            let m = (n - t0).min(runspec::CHUNK);
            runspec::exec_streamed(&rs.stream, &mut rs.arena, t0, m);
            runspec::exec_recurrent(
                &rs.rec_steady,
                &rs.prelude,
                &rs.tab,
                &rs.acc_map,
                &mut rs.arena,
                t0,
                m,
            );
            t0 += m;
        }
        if let (Some(p), Some(b), Some(e)) = (t_probe, t_plan, t_exec) {
            runspec::phase_timing::record(b - p, e - b, e.elapsed(), n);
        }
        let n = n as u64;
        stats.loads += spec.loads_per_iter * n;
        stats.stores += spec.stores_per_iter * n;
        stats.scalar_flops += spec.flops_per_iter * n;
        stats.index_ops += spec.index_ops_per_iter * n;
        stats.vector_loads += spec.vloads_per_iter * n;
        stats.vector_stores += spec.vstores_per_iter * n;
        stats.vector_flops += spec.vflops_per_iter * n;
        regs.rs = rs;
        true
    }

    /// `scf.execute_wavefronts`: sequential over levels, parallel within
    /// one — mirrors the interpreter exactly, including how statistics
    /// are attributed (the coordinator counts levels once; workers count
    /// the blocks they run in private frames that are merged here).
    #[allow(clippy::too_many_arguments)]
    fn exec_wavefronts(
        &self,
        func: &BcFunc,
        rows: u32,
        cols: u32,
        block: u32,
        body: u32,
        regs: &mut Regs,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        let rows = Arc::clone(regs.arr(rows)?);
        let cols = Arc::clone(regs.arr(cols)?);
        // Dataflow mode recovers the dependence graph from the Arc
        // identity of `cols` (minted by `Instr::GetParallelBlocks` via
        // the schedule-bundle cache); a miss falls back to levels. The
        // path is taken at one thread too: the inline dataflow sweep
        // walks blocks in flat ascending order with no CSR level
        // indirection, which is strictly cheaper than the level-major
        // walk below.
        if self.pool.scheduler() == Scheduler::Dataflow {
            if let Some(bundle) = dataflow::lookup_by_cols(&cols) {
                // Levels are still counted from the CSR row pointer so
                // statistics stay scheduler-invariant.
                stats.wavefront_levels += (rows.len() - 1) as u64;
                let base: &Regs = regs;
                return self.pool.try_execute_bundle(
                    &bundle,
                    || {
                        let mut r = base.clone();
                        if let Some(rs) = self.scratch.lock().unwrap().pop() {
                            r.rs = rs;
                        }
                        (r, ExecStats::default())
                    },
                    |state: &mut (Regs, ExecStats), b| {
                        let (worker_regs, worker_stats) = state;
                        worker_stats.blocks_executed += 1;
                        worker_regs.i[block as usize] = b as i64;
                        self.run_tape(func, body, worker_regs, worker_stats)
                    },
                    |(mut worker_regs, worker_stats)| {
                        self.scratch
                            .lock()
                            .unwrap()
                            .push(std::mem::take(&mut worker_regs.rs));
                        stats.merge(&worker_stats);
                    },
                );
            }
            self.pool
                .obs()
                .event("dataflow-fallback", "cols not from schedule cache");
        }
        if self.pool.threads() == 1 {
            let obs = self.pool.obs();
            let record = obs.enabled();
            let detail = obs.detail_enabled();
            let _tg = trace::install(obs.worker_tracer(0));
            let mut level_records = Vec::new();
            let mut outcome = Ok(());
            'levels: for (index, level) in rows.windows(2).enumerate() {
                let checker = crate::buffer::overlap::LevelChecker::new();
                let t0 = record.then(std::time::Instant::now);
                let ts = trace::begin();
                let mut done = 0u64;
                stats.wavefront_levels += 1;
                for &c in &cols[level[0] as usize..level[1] as usize] {
                    stats.blocks_executed += 1;
                    done += 1;
                    regs.i[block as usize] = c;
                    let _wg = checker.guard(c as usize);
                    if let Err(e) = self.run_tape(func, body, regs, stats) {
                        outcome = Err(e);
                        break;
                    }
                }
                if done > 0 {
                    trace::end(TraceKind::Task, ts, index as u32, done as u32);
                }
                if let Some(t0) = t0 {
                    let wall_ns = t0.elapsed().as_nanos() as u64;
                    level_records.push(instencil_obs::LevelRecord {
                        index,
                        blocks: (level[1] - level[0]) as u64,
                        wall_ns,
                        workers: if detail {
                            vec![instencil_obs::WorkerRecord {
                                busy_ns: wall_ns,
                                blocks: done,
                                ..instencil_obs::WorkerRecord::default()
                            }]
                        } else {
                            Vec::new()
                        },
                    });
                }
                if outcome.is_err() {
                    break 'levels;
                }
            }
            if record {
                obs.record_wavefronts(instencil_obs::WavefrontRecord {
                    threads: 1,
                    scheduler: Scheduler::Levels.name().to_owned(),
                    sweeps: 1,
                    levels: level_records,
                });
            }
            return outcome;
        }
        let row_ptr: Vec<usize> = rows.iter().map(|&x| x as usize).collect();
        let blocks: Vec<usize> = cols.iter().map(|&x| x as usize).collect();
        let schedule = CsrWavefronts::new(row_ptr, blocks);
        stats.wavefront_levels += schedule.num_levels() as u64;
        // Each worker gets a clone of the register files: tape-local
        // registers are written per block but never read across blocks
        // (SSA dominance), so discarding the clones afterwards matches
        // sequential semantics.
        let base: &Regs = regs;
        self.pool.try_execute_stateful(
            &schedule,
            || {
                let mut r = base.clone();
                if let Some(rs) = self.scratch.lock().unwrap().pop() {
                    r.rs = rs;
                }
                (r, ExecStats::default())
            },
            |state: &mut (Regs, ExecStats), b| {
                let (worker_regs, worker_stats) = state;
                worker_stats.blocks_executed += 1;
                worker_regs.i[block as usize] = b as i64;
                self.run_tape(func, body, worker_regs, worker_stats)
            },
            |(mut worker_regs, worker_stats)| {
                self.scratch
                    .lock()
                    .unwrap()
                    .push(std::mem::take(&mut worker_regs.rs));
                stats.merge(&worker_stats);
            },
        )
    }

    /// `sweeps` fused executions of one `scf.execute_wavefronts`,
    /// drained dataflow-style through the sweep-extended graph (the
    /// scheduler knob is ignored: a level barrier would serialize the
    /// sweeps and defeat the batching; results are order-independent, so
    /// they are bit-identical either way). Statistics are counted as if
    /// the sweeps ran eagerly: the level count accrues per sweep and the
    /// workers count every block they execute.
    #[allow(clippy::too_many_arguments)]
    fn exec_wavefronts_batched(
        &self,
        func: &BcFunc,
        rows: u32,
        cols: u32,
        block: u32,
        body: u32,
        sweeps: usize,
        regs: &mut Regs,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        let row_arr = Arc::clone(regs.arr(rows)?);
        let col_arr = Arc::clone(regs.arr(cols)?);
        let Some(bundle) = dataflow::lookup_by_cols(&col_arr) else {
            // The schedule did not come from the bundle cache (never the
            // case for `cfd.get_parallel_blocks` output): run the sweeps
            // eagerly through the ordinary executor.
            self.pool
                .obs()
                .event("sweep-batch-fallback", "cols not from schedule cache");
            for _ in 0..sweeps {
                self.exec_wavefronts(func, rows, cols, block, body, regs, stats)?;
            }
            return Ok(());
        };
        stats.wavefront_levels += (sweeps * (row_arr.len() - 1)) as u64;
        let base: &Regs = regs;
        self.pool.try_execute_sweep_batch(
            &bundle,
            sweeps,
            || {
                let mut r = base.clone();
                if let Some(rs) = self.scratch.lock().unwrap().pop() {
                    r.rs = rs;
                }
                (r, ExecStats::default())
            },
            |state: &mut (Regs, ExecStats), _sweep, b| {
                let (worker_regs, worker_stats) = state;
                worker_stats.blocks_executed += 1;
                worker_regs.i[block as usize] = b as i64;
                self.run_tape(func, body, worker_regs, worker_stats)
            },
            |(mut worker_regs, worker_stats)| {
                self.scratch
                    .lock()
                    .unwrap()
                    .push(std::mem::take(&mut worker_regs.rs));
                stats.merge(&worker_stats);
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_ir::{FuncBuilder, Type};

    fn engine_for(build: impl FnOnce(&mut Module)) -> BytecodeEngine {
        let mut m = Module::new("t");
        build(&mut m);
        m.verify().unwrap();
        BytecodeEngine::compile(&m).unwrap()
    }

    #[test]
    fn arithmetic_and_loop() {
        let mut eng = engine_for(|m| {
            let mut fb = FuncBuilder::new("f", vec![], vec![Type::F64]);
            let c0 = fb.const_index(0);
            let c10 = fb.const_index(10);
            let c1 = fb.const_index(1);
            let acc0 = fb.const_f64(0.0);
            let r = fb.build_for(c0, c10, c1, vec![acc0], |fb, iv, iters| {
                let x = fb.index_to_f64(iv);
                vec![fb.addf(iters[0], x)]
            });
            fb.ret(vec![r[0]]);
            m.push_func(fb.finish());
        });
        let out = eng.call("f", vec![]).unwrap();
        assert_eq!(out[0].as_f64(), 45.0);
        assert_eq!(eng.stats.scalar_flops, 10);
    }

    #[test]
    fn if_and_compare() {
        let mut eng = engine_for(|m| {
            let mut fb = FuncBuilder::new("f", vec![], vec![Type::F64]);
            let a = fb.const_f64(3.0);
            let b = fb.const_f64(5.0);
            let c = fb.cmpf(CmpPred::Lt, a, b);
            let r = fb.build_if(
                c,
                vec![Type::F64],
                |fb| vec![fb.const_f64(1.0)],
                |fb| vec![fb.const_f64(-1.0)],
            );
            fb.ret(vec![r[0]]);
            m.push_func(fb.finish());
        });
        assert_eq!(eng.call("f", vec![]).unwrap()[0].as_f64(), 1.0);
    }

    #[test]
    fn memory_and_vectors() {
        let mut eng = engine_for(|m| {
            let m2 = Type::memref_dyn(Type::F64, 2);
            let mut fb = FuncBuilder::new("f", vec![m2], vec![Type::F64]);
            let buf = fb.arg(0);
            let i0 = fb.const_index(0);
            let i1 = fb.const_index(1);
            let v = fb.transfer_read(buf, &[i0, i0], 4);
            let two = fb.const_f64_vector(2.0, 4);
            let scaled = fb.mulf(v, two);
            fb.transfer_write_mem(scaled, buf, &[i1, i0]);
            let x = fb.vec_extract(scaled, 3);
            fb.ret(vec![x]);
            m.push_func(fb.finish());
        });
        let b = BufferView::from_data(&[2, 4], (0..8).map(f64::from).collect());
        let out = eng.call("f", vec![RtVal::Buf(b.clone())]).unwrap();
        assert_eq!(out[0].as_f64(), 6.0);
        assert_eq!(b.to_vec()[4..], [0.0, 2.0, 4.0, 6.0]);
        assert_eq!(eng.stats.vector_loads, 1);
        assert_eq!(eng.stats.vector_stores, 1);
        assert_eq!(eng.stats.vector_flops, 1);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut eng = engine_for(|m| {
            let mut fb = FuncBuilder::new("f", vec![], vec![Type::Index]);
            let a = fb.const_index(3);
            let z = fb.const_index(0);
            let q = fb.floordiv(a, z);
            fb.ret(vec![q]);
            m.push_func(fb.finish());
        });
        let e = eng.call("f", vec![]).unwrap_err();
        assert!(e.message.contains("division by zero"), "{e}");
    }

    #[test]
    fn missing_function_is_an_error() {
        let mut eng = engine_for(|_| {});
        assert!(eng.call("nope", vec![]).is_err());
    }

    #[test]
    fn calls_pass_arguments_and_results() {
        let mut eng = engine_for(|m| {
            let mut g = FuncBuilder::new("square", vec![Type::F64], vec![Type::F64]);
            let x = g.arg(0);
            let y = g.mulf(x, x);
            g.ret(vec![y]);
            m.push_func(g.finish());
            let mut f = FuncBuilder::new("f", vec![Type::F64, Type::F64], vec![Type::F64]);
            let a = f.arg(0);
            let b = f.arg(1);
            let sa = f.call("square", vec![a], vec![Type::F64]);
            let sb = f.call("square", vec![b], vec![Type::F64]);
            let s = f.addf(sa[0], sb[0]);
            f.ret(vec![s]);
            m.push_func(f.finish());
        });
        let out = eng
            .call("f", vec![RtVal::F64(3.0), RtVal::F64(4.0)])
            .unwrap();
        assert_eq!(out[0].as_f64(), 25.0);
    }

    #[test]
    fn get_parallel_blocks_and_wavefronts() {
        let mut eng = engine_for(|m| {
            let mut fb = FuncBuilder::new("f", vec![], vec![]);
            let n = fb.const_index(3);
            let (_rows, _cols) = instencil_core::ops::build_get_parallel_blocks(
                &mut fb,
                &[n, n],
                vec![3, 3],
                vec![0, 0, 0, -1, 0, 0, 0, -1, 0],
            );
            fb.ret(vec![]);
            m.push_func(fb.finish());
        });
        eng.call("f", vec![]).unwrap();
        assert_eq!(eng.stats.schedules_computed, 1);
    }

    #[test]
    fn threads_knob_clamps_to_one() {
        let m = Module::new("t");
        assert_eq!(
            BytecodeEngine::compile_with_threads(&m, 0).unwrap().threads(),
            1
        );
        assert_eq!(
            BytecodeEngine::compile_with_threads(&m, 4).unwrap().threads(),
            4
        );
    }
}
