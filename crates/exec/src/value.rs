//! Runtime values manipulated by the interpreter.

use std::fmt;
use std::sync::Arc;

use crate::buffer::BufferView;

/// A runtime value: one SSA value's payload during interpretation.
#[derive(Clone)]
pub enum RtVal {
    /// `f64` / `f32` scalar.
    F64(f64),
    /// `index` / `i64` scalar.
    Int(i64),
    /// `i1`.
    Bool(bool),
    /// `vector<Nxf64>`.
    Vec(Vec<f64>),
    /// A memref (buffer view).
    Buf(BufferView),
    /// An immutable `i64` array (`tensor<?xi64>` — CSR schedules).
    I64Arr(Arc<Vec<i64>>),
}

impl RtVal {
    /// Scalar float payload.
    ///
    /// # Panics
    /// Panics when the value is not a float.
    pub fn as_f64(&self) -> f64 {
        match self {
            RtVal::F64(v) => *v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Integer payload.
    ///
    /// # Panics
    /// Panics when the value is not an integer.
    pub fn as_int(&self) -> i64 {
        match self {
            RtVal::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    /// Panics when the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            RtVal::Bool(v) => *v,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Vector payload.
    ///
    /// # Panics
    /// Panics when the value is not a vector.
    pub fn as_vec(&self) -> &[f64] {
        match self {
            RtVal::Vec(v) => v,
            other => panic!("expected vector, got {other:?}"),
        }
    }

    /// Buffer payload.
    ///
    /// # Panics
    /// Panics when the value is not a buffer.
    pub fn as_buf(&self) -> &BufferView {
        match self {
            RtVal::Buf(b) => b,
            other => panic!("expected buffer, got {other:?}"),
        }
    }

    /// i64-array payload.
    ///
    /// # Panics
    /// Panics when the value is not an i64 array.
    pub fn as_i64_arr(&self) -> &[i64] {
        match self {
            RtVal::I64Arr(a) => a,
            other => panic!("expected i64 array, got {other:?}"),
        }
    }
}

impl fmt::Debug for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::F64(v) => write!(f, "f64({v})"),
            RtVal::Int(v) => write!(f, "int({v})"),
            RtVal::Bool(v) => write!(f, "bool({v})"),
            RtVal::Vec(v) => write!(f, "vec{v:?}"),
            RtVal::Buf(b) => write!(f, "{b:?}"),
            RtVal::I64Arr(a) => write!(f, "i64arr(len={})", a.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(RtVal::F64(2.5).as_f64(), 2.5);
        assert_eq!(RtVal::Int(-3).as_int(), -3);
        assert!(RtVal::Bool(true).as_bool());
        assert_eq!(RtVal::Vec(vec![1.0, 2.0]).as_vec(), &[1.0, 2.0]);
        assert_eq!(RtVal::I64Arr(Arc::new(vec![1, 2])).as_i64_arr(), &[1, 2]);
    }

    #[test]
    fn values_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtVal>();
    }

    #[test]
    #[should_panic(expected = "expected f64")]
    fn wrong_kind_panics() {
        let _ = RtVal::Int(1).as_f64();
    }
}
