//! Real multithreaded wavefront execution.
//!
//! [`WavefrontPool`] executes a block schedule with genuine OS threads,
//! under one of two synchronization disciplines selected by
//! [`Scheduler`]:
//!
//! * **Levels** — the §3.4 lowering as written: a sequential loop over
//!   wavefront levels with the level's sub-domain indices split across
//!   the workers and a barrier between consecutive levels. The pool is
//!   *persistent*: workers are spawned once per run and synchronize on a
//!   lightweight [`std::sync::Barrier`], not respawned per level.
//! * **Dataflow** — point-to-point execution of the block dependence
//!   graph ([`BlockGraph`]), coarsened into [`TaskGraph`] tasks: chains
//!   of consecutive small blocks fuse into single scheduled units so the
//!   atomic in-degree traffic and deque locking amortize over real work
//!   (the machine model's [`Machine::dataflow_grain`] picks the fusion
//!   grain). Each worker drains a ready-set of tasks, decrements
//!   successor in-degrees with atomics, and routes newly-ready tasks to
//!   their *owning* worker's deque — ownership is a stable contiguous
//!   shard of the flat index space ([`shard_owner`]), so lexicographic
//!   neighbors stay on one core across levels and sweeps. An idle
//!   worker steals along a NUMA-near-first rotated peer order derived
//!   from the [`Machine`] topology, and backs off (bounded spin, then
//!   exponential sleep) when the whole pool runs dry. The Release half
//!   of the in-degree `fetch_sub` and the Acquire half performed by the
//!   final decrementer form a happens-before chain from every
//!   predecessor's buffer writes to the successor's execution, replacing
//!   the barrier's publication role (see `DESIGN.md` §4f/§4g).
//!
//! The pool runs closures over *linearized sub-domain indices*. It has
//! four entry points: [`WavefrontPool::execute`] for stateless workers,
//! [`WavefrontPool::try_execute_stateful`] (level mode) and
//! [`WavefrontPool::try_execute_dataflow`] /
//! [`WavefrontPool::try_execute_bundle`] (graph mode), the stateful ones
//! giving each worker private state (the interpreter uses this to run
//! `scf.execute_wavefronts` bodies with a per-thread environment and
//! statistics frame) and propagating the first error.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use instencil_machine::topology::{xeon_6152_dual, Machine};
use instencil_obs::trace::{self, TraceKind};
use instencil_obs::{LevelRecord, Obs, WavefrontRecord, WorkerRecord};
use instencil_pattern::dataflow::{shard_owner, BlockGraph, ScheduleBundle, Scheduler, TaskGraph};
use instencil_pattern::CsrWavefronts;

use crate::buffer::overlap;

/// Captured panic payload from a worker, re-raised on the calling
/// thread so the original message (e.g. the overlap checker's) survives.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Per-level obs samples a worker collects: `(level index, busy ns,
/// blocks executed)`.
type LevelSamples = Vec<(usize, u64, u64)>;

/// Idle scan rounds an empty-handed worker spends yielding before it
/// starts sleeping. Yields are near-free and keep wake-up latency at
/// scheduler-quantum scale while the wavefront pipeline is merely
/// momentarily narrow.
const SPIN_ROUNDS: u32 = 64;

/// Cap on the exponential sleep, microseconds. Bounded low: a parked
/// owner whose deque just received routed work must come back quickly,
/// or the affinity routing would lengthen the critical path.
const MAX_PARK_US: u64 = 64;

/// Per-worker counters of one dataflow run, surfaced as a
/// [`WorkerRecord`] at `Trace` detail.
#[derive(Clone, Copy, Default)]
struct WorkerStats {
    busy_ns: u64,
    blocks: u64,
    steals: u64,
    steal_dist: u64,
    fused: u64,
}

/// The process-default machine model (the paper's evaluation platform);
/// used when a pool is built without an explicit [`Machine`].
fn default_machine() -> Arc<Machine> {
    static MODEL: OnceLock<Arc<Machine>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| Arc::new(xeon_6152_dual())))
}

/// A scoped thread pool executing wavefront schedules.
#[derive(Clone, Debug)]
pub struct WavefrontPool {
    threads: usize,
    obs: Obs,
    scheduler: Scheduler,
    machine: Arc<Machine>,
}

impl WavefrontPool {
    /// Creates a pool with the given number of worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self::with_obs(threads, Obs::off())
    }

    /// Creates a pool that records per-level (and, at
    /// [`instencil_obs::ObsLevel::Trace`], per-worker) timings into `obs`.
    pub fn with_obs(threads: usize, obs: Obs) -> Self {
        Self::with_opts(threads, obs, Scheduler::Levels)
    }

    /// Creates a pool with an explicit scheduler mode, on the default
    /// machine model.
    pub fn with_opts(threads: usize, obs: Obs, scheduler: Scheduler) -> Self {
        Self::with_machine(threads, obs, scheduler, default_machine())
    }

    /// Creates a pool whose steal order and coarsening grain derive
    /// from an explicit [`Machine`] topology.
    pub fn with_machine(
        threads: usize,
        obs: Obs,
        scheduler: Scheduler,
        machine: Arc<Machine>,
    ) -> Self {
        WavefrontPool {
            threads: threads.max(1),
            obs,
            scheduler,
            machine,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The machine topology this pool schedules against.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The observability collector this pool reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The scheduler mode this pool runs under.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Executes `work` for every scheduled sub-domain, level by level.
    /// Within a level the indices are split into contiguous chunks, one
    /// per worker; levels are separated by a barrier.
    ///
    /// # Panics
    /// Propagates panics from worker closures.
    pub fn execute<F>(&self, schedule: &CsrWavefronts, work: F)
    where
        F: Fn(usize) + Sync,
    {
        let result: Result<(), std::convert::Infallible> = self.try_execute_stateful(
            schedule,
            || (),
            |(), b| {
                work(b);
                Ok(())
            },
            |()| {},
        );
        match result {
            Ok(()) => {}
            Err(never) => match never {},
        }
    }

    /// Executes a fallible `work` closure over every scheduled sub-domain
    /// with per-worker state, level by level.
    ///
    /// Each worker thread gets its own state from `init` once for the
    /// whole run (the pool is persistent — workers are spawned once, and
    /// a [`Barrier`] separates consecutive levels, which is what
    /// publishes one level's buffer stores to the next; see
    /// [`crate::buffer`]). Within a level the sub-domain indices are
    /// split into contiguous chunks, one per worker. When the run
    /// finishes (or fails), every worker's state is handed to `merge` on
    /// the calling thread.
    ///
    /// State is always merged — including the partial state of a worker
    /// that failed — so additive counters (e.g. [`crate::ExecStats`])
    /// stay consistent. Workers already running when another worker of
    /// the same level fails are not cancelled; no further level starts
    /// after a failure.
    ///
    /// # Errors
    /// Returns the first error produced by `work` (earliest failing
    /// level, lowest worker index within it).
    ///
    /// # Panics
    /// Propagates panics from worker closures (the original payload is
    /// re-raised once every worker has parked).
    pub fn try_execute_stateful<S, E, I, W, M>(
        &self,
        schedule: &CsrWavefronts,
        init: I,
        work: W,
        mut merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let record = self.obs.enabled();
        let detail = self.obs.detail_enabled();
        let mut level_records: Vec<LevelRecord> = Vec::new();
        if self.threads == 1 {
            let _tg = trace::install(self.obs.worker_tracer(0));
            let mut state = init();
            let mut outcome = Ok(());
            'levels: for (index, level) in schedule.levels().enumerate() {
                let checker = overlap::LevelChecker::new();
                let t0 = record.then(Instant::now);
                let ts = trace::begin();
                let mut done = 0u64;
                for &b in level {
                    let _wg = checker.guard(b);
                    if let Err(e) = work(&mut state, b) {
                        outcome = Err(e);
                        done += 1; // the failing block still ran
                        trace::end(TraceKind::Task, ts, index as u32, done as u32);
                        self.push_level(&mut level_records, index, level.len(), t0, detail, vec![done]);
                        break 'levels;
                    }
                    done += 1;
                }
                if outcome.is_ok() {
                    if done > 0 {
                        trace::end(TraceKind::Task, ts, index as u32, done as u32);
                    }
                    self.push_level(&mut level_records, index, level.len(), t0, detail, vec![done]);
                }
            }
            merge(state);
            self.flush_levels(1, level_records);
            return outcome;
        }
        if schedule.num_blocks() == 0 {
            // Nothing to run: spawn no workers, merge no states.
            self.flush_levels(self.threads, level_records);
            return Ok(());
        }

        // Workers beyond the widest level would only ever wait at
        // barriers — clamp to the schedule's actual width.
        let max_width = schedule.levels().map(|l| l.len()).max().unwrap_or(1);
        let threads = self.threads.min(max_width.max(1));
        let n_total = schedule.num_blocks();
        let init = &init;
        let work = &work;
        // One checker per level, shared by all workers of that level
        // (a ZST vector in release builds).
        let checkers: Vec<overlap::LevelChecker> = (0..schedule.num_levels())
            .map(|_| overlap::LevelChecker::new())
            .collect();
        let barrier = Barrier::new(threads);
        // Index of the earliest level where a worker failed or panicked.
        // This must be a level, not a boolean: a fast worker can race
        // into level L+1 and fail there before a slow worker performs
        // its post-barrier check at level L — a boolean would make the
        // slow worker break a level early and desert the L+1 barrier.
        // Any value <= L is published before level L's end barrier, so
        // the `stop_level <= L` decision is uniform across workers.
        let stop_level = AtomicUsize::new(usize::MAX);
        let panic_slot: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let first_err: Mutex<Option<(usize, usize, E)>> = Mutex::new(None);
        // Per-level wall times, written by worker 0 only.
        let walls: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());

        // The persistent worker body: iterates all levels in lockstep
        // with its peers, executing its static chunk of each level.
        // Returns the worker state plus per-level (index, busy_ns,
        // blocks) samples for the obs records.
        let worker_loop = |w: usize| -> (S, Vec<(usize, u64, u64)>) {
            let _tg = trace::install(self.obs.worker_tracer(w as u32));
            let mut state = init();
            let mut samples: Vec<(usize, u64, u64)> = Vec::new();
            for (index, level) in schedule.levels().enumerate() {
                if level.is_empty() {
                    continue;
                }
                let t0 = if record && w == 0 {
                    let t0 = Some(Instant::now());
                    // Start alignment: no peer enters the level before
                    // worker 0 has read the clock, so the recorded wall
                    // covers every worker's chunk.
                    barrier.wait();
                    t0
                } else {
                    if record {
                        barrier.wait();
                    }
                    None
                };
                let w0 = detail.then(Instant::now);
                let ts = trace::begin();
                let mut done = 0u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), E> {
                    // Stable worker↔tile affinity: worker `w` executes
                    // the blocks of its contiguous flat-index shard in
                    // *every* level and every sweep. The per-level
                    // membership varies, but a given block (and its
                    // cache lines, and its recurrence-stripe neighbors)
                    // always belongs to the same worker — unlike
                    // chunking each level afresh, which reshuffled
                    // blocks across workers between levels and trashed
                    // private caches.
                    for &b in level {
                        if shard_owner(b, n_total, threads) != w {
                            continue;
                        }
                        done += 1;
                        let _wg = checkers[index].guard(b);
                        work(&mut state, b)?;
                    }
                    Ok(())
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        let mut slot = first_err.lock().unwrap();
                        if slot.as_ref().is_none_or(|&(pl, pw, _)| (index, w) < (pl, pw)) {
                            *slot = Some((index, w, e));
                        }
                        stop_level.fetch_min(index, Ordering::AcqRel);
                    }
                    Err(payload) => {
                        let mut slot = panic_slot.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        stop_level.fetch_min(index, Ordering::AcqRel);
                    }
                }
                if done > 0 {
                    trace::end(TraceKind::Task, ts, index as u32, done as u32);
                }
                if detail {
                    samples.push((index, w0.map_or(0, |t| t.elapsed().as_nanos() as u64), done));
                }
                // The end-of-level barrier: publishes this level's
                // stores to the next level and lines every worker up on
                // the same stop decision.
                barrier.wait();
                if let Some(t0) = t0 {
                    walls.lock().unwrap().push((index, t0.elapsed().as_nanos() as u64));
                }
                if stop_level.load(Ordering::Acquire) <= index {
                    break;
                }
            }
            (state, samples)
        };

        let mut results: Vec<(S, LevelSamples)> = Vec::with_capacity(threads);
        thread::scope(|s| {
            let handles: Vec<_> = (1..threads)
                .map(|w| s.spawn(move || worker_loop(w)))
                .collect();
            results.push(worker_loop(0));
            for h in handles {
                // Workers catch their own panics; a join error here means
                // something escaped the protocol — re-raise it directly.
                results.push(h.join().unwrap_or_else(|p| resume_unwind(p)));
            }
        });

        if record {
            let walls = walls.into_inner().unwrap();
            for &(index, wall_ns) in &walls {
                let mut workers = Vec::new();
                if detail {
                    for (_, samples) in &results {
                        if let Some(&(_, busy_ns, blocks)) =
                            samples.iter().find(|&&(i, _, _)| i == index)
                        {
                            if blocks > 0 {
                                workers.push(WorkerRecord {
                                    busy_ns,
                                    blocks,
                                    ..WorkerRecord::default()
                                });
                            }
                        }
                    }
                }
                level_records.push(LevelRecord {
                    index,
                    blocks: schedule.level(index).len() as u64,
                    wall_ns,
                    workers,
                });
            }
        }
        for (state, _) in results {
            merge(state);
        }
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            resume_unwind(payload);
        }
        self.flush_levels(threads, level_records);
        match first_err.into_inner().unwrap() {
            Some((_, _, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// The coarsening grain for `graph` under this pool's machine model
    /// and worker count.
    fn grain_for(&self, graph: &BlockGraph) -> usize {
        let inner = graph.grid().last().copied().unwrap_or(1);
        self.machine.dataflow_grain(graph.num_blocks(), inner, self.threads)
    }

    /// Executes a fallible `work` closure over every block of `graph`
    /// in dataflow order: each block runs as soon as all its
    /// predecessors have finished, with no level barriers.
    ///
    /// The graph is first coarsened into a [`TaskGraph`] at the
    /// machine-derived grain; prefer
    /// [`try_execute_bundle`](Self::try_execute_bundle) when a
    /// [`ScheduleBundle`] is at hand (it memoizes the coarsened graph
    /// across sweeps).
    ///
    /// State and merge semantics match
    /// [`try_execute_stateful`](Self::try_execute_stateful); under
    /// concurrency "first error" is the first one *observed*, which is
    /// deterministic only at one thread.
    ///
    /// # Errors
    /// Returns the first observed error produced by `work`.
    ///
    /// # Panics
    /// Propagates panics from worker closures (original payload).
    pub fn try_execute_dataflow<S, E, I, W, M>(
        &self,
        graph: &BlockGraph,
        init: I,
        work: W,
        merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let tasks = TaskGraph::build(graph, self.grain_for(graph));
        self.try_execute_tasks(graph, &tasks, init, work, merge)
    }

    /// Dataflow execution through a [`ScheduleBundle`]: like
    /// [`try_execute_dataflow`](Self::try_execute_dataflow) but the
    /// coarsened task graph comes from the bundle's per-grain memo, so
    /// solver iterations re-running the same schedule do not rebuild it.
    ///
    /// # Errors
    /// Returns the first observed error produced by `work`.
    pub fn try_execute_bundle<S, E, I, W, M>(
        &self,
        bundle: &ScheduleBundle,
        init: I,
        work: W,
        merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let tasks = bundle.task_graph(self.grain_for(&bundle.graph));
        self.try_execute_tasks(&bundle.graph, &tasks, init, work, merge)
    }

    /// The dataflow engine proper, over a coarsened task partition.
    ///
    /// Worker `w` owns a deque of ready *tasks* (each a chain of up to
    /// `grain` consecutive blocks, executed in ascending flat order).
    /// Finishing a task decrements each successor task's in-degree
    /// (`fetch_sub(1, AcqRel)`); the worker that takes an in-degree to
    /// zero routes the newly-ready task: the first one is kept in hand
    /// (work-first — never go idle while shipping work away; it is also
    /// the lexicographically smallest, whose recurrence stripe this
    /// worker just touched), surplus tasks go to their *owner*'s deque,
    /// where ownership is the stable contiguous shard map
    /// ([`shard_owner`]) that also seeded the roots. An idle worker
    /// first drains its own deque from the back (LIFO keeps the
    /// footprint warm), then steals from the front of its peers' deques
    /// in the machine's NUMA-near-first rotated order, then backs off —
    /// [`SPIN_ROUNDS`] yields, then exponential sleep capped at
    /// [`MAX_PARK_US`] — until every task has retired. The atomic
    /// read-modify-write chain on the in-degree carries the
    /// happens-before edge from every predecessor's buffer writes to
    /// the successor's execution, replacing the level barrier
    /// (DESIGN.md §4g).
    fn try_execute_tasks<S, E, I, W, M>(
        &self,
        graph: &BlockGraph,
        tasks: &TaskGraph,
        init: I,
        work: W,
        mut merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let n = graph.num_blocks();
        if n == 0 {
            return Ok(());
        }
        let record = self.obs.enabled();
        let detail = self.obs.detail_enabled();
        let checker = overlap::GraphChecker::new(graph);
        if self.threads == 1 {
            // Ascending flat order is a topological order: every
            // predecessor of a block has a smaller flat index (all
            // dependence offsets are lexicographically negative).
            let _tg = trace::install(self.obs.worker_tracer(0));
            let t0 = record.then(Instant::now);
            let ts = trace::begin();
            let mut state = init();
            let mut outcome = Ok(());
            let mut done = 0u64;
            for b in 0..n {
                let _wg = checker.guard(b);
                done += 1;
                if let Err(e) = work(&mut state, b) {
                    outcome = Err(e);
                    break;
                }
            }
            trace::end(TraceKind::Task, ts, 0, done as u32);
            merge(state);
            if let Some(t0) = t0 {
                self.flush_dataflow(
                    1,
                    n,
                    1,
                    t0.elapsed().as_nanos() as u64,
                    detail.then(|| {
                        vec![WorkerStats {
                            busy_ns: t0.elapsed().as_nanos() as u64,
                            blocks: done,
                            ..WorkerStats::default()
                        }]
                    }),
                );
            }
            return outcome;
        }

        // No point spawning more workers than tasks: the surplus would
        // only spin on empty deques until the run retires.
        let n_tasks = tasks.num_tasks();
        let threads = self.threads.min(n_tasks);
        let indeg: Vec<AtomicU32> =
            (0..n_tasks).map(|t| AtomicU32::new(tasks.in_degree(t))).collect();
        let remaining = AtomicUsize::new(n_tasks);
        let deques: Vec<Mutex<std::collections::VecDeque<u32>>> = (0..threads)
            .map(|_| Mutex::new(std::collections::VecDeque::new()))
            .collect();
        // Seed each worker's deque with its own contiguous shard of the
        // ready roots (task indices ascend with flat block order, so
        // shard neighbors are lexicographic neighbors).
        for r in tasks.roots() {
            deques[shard_owner(r as usize, n_tasks, threads)]
                .lock()
                .unwrap()
                .push_back(r);
        }
        // NUMA-near-first rotated peer scan per worker, from the model.
        let steal_orders: Vec<Vec<usize>> =
            (0..threads).map(|w| self.machine.steal_order(w, threads)).collect();
        let abort = AtomicBool::new(false);
        let panic_slot: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let first_err: Mutex<Option<E>> = Mutex::new(None);
        let init = &init;
        let work = &work;
        let checker = &checker;
        let steal_orders = &steal_orders;

        let worker_loop = |w: usize| -> (S, WorkerStats) {
            let _tg = trace::install(self.obs.worker_tracer(w as u32));
            let mut state = init();
            let mut my_next: Option<u32> = None;
            let mut st = WorkerStats::default();
            let mut idle_rounds = 0u32;
            loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                // Local first: the task kept in hand, then the back of
                // the own deque (LIFO keeps the footprint warm).
                let mut task = my_next
                    .take()
                    .or_else(|| deques[w].lock().unwrap().pop_back());
                if task.is_none() {
                    // Steal from the front of a peer's deque (FIFO:
                    // take the work its owner would reach last),
                    // nearest peers first.
                    for (dist, &other) in steal_orders[w].iter().enumerate() {
                        if let Some(t) = deques[other].lock().unwrap().pop_front() {
                            st.steals += 1;
                            st.steal_dist += dist as u64 + 1;
                            trace::instant(TraceKind::Steal, other as u32, dist as u32 + 1);
                            task = Some(t);
                            break;
                        }
                    }
                }
                let Some(t) = task else {
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Bounded spin, then exponential backoff: an empty
                    // scan means the pipeline is momentarily narrower
                    // than the pool, and hammering peer deque locks
                    // only slows the workers that do hold work.
                    idle_rounds += 1;
                    if idle_rounds <= SPIN_ROUNDS {
                        thread::yield_now();
                    } else {
                        let exp = u64::from(idle_rounds - SPIN_ROUNDS).min(6);
                        let ts = trace::begin();
                        thread::sleep(Duration::from_micros((1 << exp).min(MAX_PARK_US)));
                        trace::end(TraceKind::Park, ts, idle_rounds, 0);
                    }
                    continue;
                };
                idle_rounds = 0;
                let t = t as usize;
                let range = tasks.blocks_of(t);
                let chain = range.len() as u64;
                let t0 = detail.then(Instant::now);
                let ts = trace::begin();
                let mut ran = 0u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), E> {
                    for b in range {
                        let _wg = checker.guard(b);
                        work(&mut state, b)?;
                        ran += 1;
                    }
                    Ok(())
                }));
                trace::end(TraceKind::Task, ts, t as u32, ran as u32);
                match outcome {
                    Ok(Ok(())) => {
                        if let Some(t0) = t0 {
                            st.busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                        st.blocks += ran;
                        st.fused += chain - 1;
                        // Successors ascend, so the first task this
                        // worker readies is the lexicographically
                        // smallest — keep it in hand (work-first);
                        // route the surplus to its owning worker.
                        for &s in tasks.successors(t) {
                            if indeg[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                if my_next.is_none() {
                                    my_next = Some(s);
                                } else {
                                    let owner = shard_owner(s as usize, n_tasks, threads);
                                    deques[owner].lock().unwrap().push_back(s);
                                }
                            }
                        }
                        remaining.fetch_sub(1, Ordering::Release);
                    }
                    Ok(Err(e)) => {
                        st.blocks += ran;
                        let mut slot = first_err.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        abort.store(true, Ordering::Release);
                    }
                    Err(payload) => {
                        st.blocks += ran;
                        let mut slot = panic_slot.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        abort.store(true, Ordering::Release);
                    }
                }
            }
            (state, st)
        };

        let t0 = record.then(Instant::now);
        let mut results: Vec<(S, WorkerStats)> = Vec::with_capacity(threads);
        thread::scope(|s| {
            let handles: Vec<_> = (1..threads)
                .map(|w| s.spawn(move || worker_loop(w)))
                .collect();
            results.push(worker_loop(0));
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| resume_unwind(p)));
            }
        });
        let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let workers = detail.then(|| results.iter().map(|&(_, st)| st).collect::<Vec<_>>());
        for (state, ..) in results {
            merge(state);
        }
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            resume_unwind(payload);
        }
        if record {
            self.flush_dataflow(threads, n, 1, wall_ns, workers);
        }
        match first_err.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Fused execution of `sweeps` identical in-place sweeps as one
    /// dataflow drain over the sweep-extended dependence graph
    /// ([`instencil_pattern::dataflow::SweepGraph`]): node `(s, t)` is
    /// task `t` of sweep `s`, with
    /// the usual intra-sweep task edges plus cross-sweep edges from
    /// `{t} ∪ pred(t)` of sweep `s` into `(s+1, ·)` — block `b` of
    /// sweep `s+1` may start as soon as its own lex-forward
    /// neighborhood of sweep `s` has retired, long before sweep `s`
    /// finishes. `work` receives `(state, sweep, block)`.
    ///
    /// Always drains dataflow-style regardless of the pool's
    /// [`Scheduler`] knob (a level barrier would serialize the sweeps
    /// and defeat the batching). At one thread the drain keeps the
    /// first task each retirement readies *in hand* and decrements
    /// cross-sweep successors before intra-sweep ones, so execution
    /// descends the temporal diagonal `(t, s) → (t', s+1)` while the
    /// stripe's working set is still cache-resident. Multi-thread, the
    /// eager worker loop is reused with nodes sharded by *task index*
    /// ([`shard_owner`] over tasks, not nodes), keeping every sweep of
    /// a stripe on the worker that owns it.
    ///
    /// Within a sweep, blocks of a task run in ascending flat order;
    /// across sweeps the cross edges reproduce the L/U in-place
    /// dependence pattern, so results are bit-identical to running the
    /// sweeps back-to-back (see `DESIGN.md` §4j). In debug builds every
    /// buffer store is checked against the sweep-qualified write
    /// intervals of concurrent nodes ([`overlap::SweepChecker`]).
    ///
    /// # Errors
    /// Returns the first observed error produced by `work`; remaining
    /// nodes are abandoned.
    ///
    /// # Panics
    /// Propagates panics from worker closures (original payload).
    pub fn try_execute_sweep_batch<S, E, I, W, M>(
        &self,
        bundle: &ScheduleBundle,
        sweeps: usize,
        init: I,
        work: W,
        mut merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let graph = &bundle.graph;
        let n = graph.num_blocks();
        if n == 0 || sweeps == 0 {
            return Ok(());
        }
        let sgraph = bundle.sweep_graph(self.grain_for(graph), sweeps);
        let tasks = sgraph.tasks();
        let n_tasks = sgraph.num_tasks();
        let total = sgraph.num_nodes();
        let record = self.obs.enabled();
        let detail = self.obs.detail_enabled();
        let checker = overlap::SweepChecker::new(graph, sweeps);

        if self.threads == 1 {
            // Readies one successor node: the first task a retirement
            // unlocks is kept in hand (work-first), surplus goes to the
            // LIFO stack. Plain counters — no other thread exists.
            fn offer(indeg: &mut [u32], in_hand: &mut Option<u32>, stack: &mut Vec<u32>, nd: u32) {
                let d = &mut indeg[nd as usize];
                *d -= 1;
                if *d == 0 {
                    if in_hand.is_none() {
                        *in_hand = Some(nd);
                    } else {
                        stack.push(nd);
                    }
                }
            }
            let _tg = trace::install(self.obs.worker_tracer(0));
            let t0 = record.then(Instant::now);
            let mut state = init();
            let mut outcome = Ok(());
            let mut done = 0u64;
            let mut indeg: Vec<u32> = Vec::with_capacity(total);
            for s in 0..sweeps {
                for t in 0..n_tasks {
                    indeg.push(sgraph.in_degree(s, t));
                }
            }
            // Roots live only in sweep 0; reversed so the stack pops
            // them in ascending task order.
            let mut stack: Vec<u32> = sgraph.roots();
            stack.reverse();
            let mut in_hand: Option<u32> = None;
            'drain: while let Some(node) = in_hand.take().or_else(|| stack.pop()) {
                let (sweep, task) = sgraph.split(node as usize);
                let ts = trace::begin();
                let mut ran = 0u32;
                for b in tasks.blocks_of(task) {
                    let _wg = checker.guard(sweep, b);
                    if let Err(e) = work(&mut state, sweep, b) {
                        trace::end_sweep(TraceKind::Task, ts, task as u32, ran, sweep as u32 + 1);
                        outcome = Err(e);
                        break 'drain;
                    }
                    ran += 1;
                }
                done += u64::from(ran);
                trace::end_sweep(TraceKind::Task, ts, task as u32, ran, sweep as u32 + 1);
                // Cross-sweep successors first: with the in-hand
                // preference this descends the temporal diagonal —
                // (t, s) hands off to (t', s+1) with t' ≤ t while the
                // stripe is still hot — instead of finishing sweep `s`
                // wall-to-wall before touching sweep `s+1`.
                if sweep + 1 < sweeps {
                    for &x in sgraph.cross_successors(task) {
                        let nd = sgraph.node(sweep + 1, x as usize) as u32;
                        offer(&mut indeg, &mut in_hand, &mut stack, nd);
                    }
                }
                for &x in sgraph.intra_successors(task) {
                    let nd = sgraph.node(sweep, x as usize) as u32;
                    offer(&mut indeg, &mut in_hand, &mut stack, nd);
                }
            }
            debug_assert!(outcome.is_err() || done == (n * sweeps) as u64);
            merge(state);
            if let Some(t0) = t0 {
                self.flush_dataflow(
                    1,
                    n,
                    sweeps,
                    t0.elapsed().as_nanos() as u64,
                    detail.then(|| {
                        vec![WorkerStats {
                            busy_ns: t0.elapsed().as_nanos() as u64,
                            blocks: done,
                            ..WorkerStats::default()
                        }]
                    }),
                );
            }
            return outcome;
        }

        // Multi-thread: the eager worker loop over sweep-extended
        // nodes. Sharding is by *task* so every sweep of a stripe lands
        // on the worker whose cache already holds it.
        let threads = self.threads.min(n_tasks);
        let indeg: Vec<AtomicU32> = (0..total)
            .map(|node| {
                let (s, t) = sgraph.split(node);
                AtomicU32::new(sgraph.in_degree(s, t))
            })
            .collect();
        let remaining = AtomicUsize::new(total);
        let deques: Vec<Mutex<std::collections::VecDeque<u32>>> = (0..threads)
            .map(|_| Mutex::new(std::collections::VecDeque::new()))
            .collect();
        for r in sgraph.roots() {
            deques[shard_owner(r as usize % n_tasks, n_tasks, threads)]
                .lock()
                .unwrap()
                .push_back(r);
        }
        let steal_orders: Vec<Vec<usize>> =
            (0..threads).map(|w| self.machine.steal_order(w, threads)).collect();
        let abort = AtomicBool::new(false);
        let panic_slot: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let first_err: Mutex<Option<E>> = Mutex::new(None);
        let init = &init;
        let work = &work;
        let checker = &checker;
        let sgraph = &sgraph;
        let steal_orders = &steal_orders;

        let worker_loop = |w: usize| -> (S, WorkerStats) {
            let _tg = trace::install(self.obs.worker_tracer(w as u32));
            let mut state = init();
            let mut my_next: Option<u32> = None;
            let mut st = WorkerStats::default();
            let mut idle_rounds = 0u32;
            loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                let mut node = my_next
                    .take()
                    .or_else(|| deques[w].lock().unwrap().pop_back());
                if node.is_none() {
                    for (dist, &other) in steal_orders[w].iter().enumerate() {
                        if let Some(t) = deques[other].lock().unwrap().pop_front() {
                            st.steals += 1;
                            st.steal_dist += dist as u64 + 1;
                            trace::instant(TraceKind::Steal, other as u32, dist as u32 + 1);
                            node = Some(t);
                            break;
                        }
                    }
                }
                let Some(nd) = node else {
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    idle_rounds += 1;
                    if idle_rounds <= SPIN_ROUNDS {
                        thread::yield_now();
                    } else {
                        let exp = u64::from(idle_rounds - SPIN_ROUNDS).min(6);
                        let ts = trace::begin();
                        thread::sleep(Duration::from_micros((1 << exp).min(MAX_PARK_US)));
                        trace::end(TraceKind::Park, ts, idle_rounds, 0);
                    }
                    continue;
                };
                idle_rounds = 0;
                let (sweep, task) = sgraph.split(nd as usize);
                let range = sgraph.tasks().blocks_of(task);
                let chain = range.len() as u64;
                let t0 = detail.then(Instant::now);
                let ts = trace::begin();
                let mut ran = 0u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), E> {
                    for b in range {
                        let _wg = checker.guard(sweep, b);
                        work(&mut state, sweep, b)?;
                        ran += 1;
                    }
                    Ok(())
                }));
                trace::end_sweep(TraceKind::Task, ts, task as u32, ran as u32, sweep as u32 + 1);
                match outcome {
                    Ok(Ok(())) => {
                        if let Some(t0) = t0 {
                            st.busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                        st.blocks += ran;
                        st.fused += chain - 1;
                        // Cross-sweep successors first, mirroring the
                        // sequential drain: the in-hand preference
                        // favors the temporal diagonal, and the self
                        // edge (t, s) → (t, s+1) stays on this worker
                        // by construction of the task-keyed shard map.
                        let mut offer = |x: u32, nd: u32| {
                            if indeg[nd as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                if my_next.is_none() {
                                    my_next = Some(nd);
                                } else {
                                    let owner = shard_owner(x as usize, n_tasks, threads);
                                    deques[owner].lock().unwrap().push_back(nd);
                                }
                            }
                        };
                        if sweep + 1 < sweeps {
                            for &x in sgraph.cross_successors(task) {
                                offer(x, sgraph.node(sweep + 1, x as usize) as u32);
                            }
                        }
                        for &x in sgraph.intra_successors(task) {
                            offer(x, sgraph.node(sweep, x as usize) as u32);
                        }
                        remaining.fetch_sub(1, Ordering::Release);
                    }
                    Ok(Err(e)) => {
                        st.blocks += ran;
                        let mut slot = first_err.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        abort.store(true, Ordering::Release);
                    }
                    Err(payload) => {
                        st.blocks += ran;
                        let mut slot = panic_slot.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        abort.store(true, Ordering::Release);
                    }
                }
            }
            (state, st)
        };

        let t0 = record.then(Instant::now);
        let mut results: Vec<(S, WorkerStats)> = Vec::with_capacity(threads);
        thread::scope(|s| {
            let handles: Vec<_> = (1..threads)
                .map(|w| s.spawn(move || worker_loop(w)))
                .collect();
            results.push(worker_loop(0));
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| resume_unwind(p)));
            }
        });
        let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let workers = detail.then(|| results.iter().map(|&(_, st)| st).collect::<Vec<_>>());
        for (state, ..) in results {
            merge(state);
        }
        if let Some(payload) = panic_slot.into_inner().unwrap() {
            resume_unwind(payload);
        }
        if record {
            self.flush_dataflow(threads, n, sweeps, wall_ns, workers);
        }
        match first_err.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Publishes a dataflow run as a single all-blocks level record
    /// (there are no barriers to split the timeline on). `blocks` is the
    /// per-sweep block count and `sweeps` the batch depth (1 for eager
    /// runs), so report means stay per-sweep across batch depths.
    fn flush_dataflow(
        &self,
        threads: usize,
        blocks: usize,
        sweeps: usize,
        wall_ns: u64,
        workers: Option<Vec<WorkerStats>>,
    ) {
        let workers = workers
            .unwrap_or_default()
            .into_iter()
            .map(|st| WorkerRecord {
                busy_ns: st.busy_ns,
                blocks: st.blocks,
                steals: st.steals,
                steal_dist: st.steal_dist,
                fused: st.fused,
            })
            .collect();
        self.obs.record_wavefronts(WavefrontRecord {
            threads,
            scheduler: Scheduler::Dataflow.name().to_owned(),
            sweeps,
            levels: vec![LevelRecord {
                index: 0,
                blocks: blocks as u64,
                wall_ns,
                workers,
            }],
        });
    }

    /// Closes one single-thread level record (`blocks_done` holds the
    /// lone worker's executed-block count).
    fn push_level(
        &self,
        records: &mut Vec<LevelRecord>,
        index: usize,
        width: usize,
        t0: Option<Instant>,
        detail: bool,
        blocks_done: Vec<u64>,
    ) {
        let Some(t0) = t0 else { return };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let workers = if detail {
            blocks_done
                .into_iter()
                .map(|blocks| WorkerRecord {
                    busy_ns: wall_ns,
                    blocks,
                    ..WorkerRecord::default()
                })
                .collect()
        } else {
            Vec::new()
        };
        records.push(LevelRecord {
            index,
            blocks: width as u64,
            wall_ns,
            workers,
        });
    }

    /// Publishes the accumulated per-level records as one
    /// [`WavefrontRecord`] (no-op when nothing was recorded).
    /// `threads` is the *effective* worker count after the width clamp.
    fn flush_levels(&self, threads: usize, levels: Vec<LevelRecord>) {
        if self.obs.enabled() {
            self.obs.record_wavefronts(WavefrontRecord {
                threads,
                scheduler: Scheduler::Levels.name().to_owned(),
                sweeps: 1,
                levels,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_pattern::schedule::WavefrontSchedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn executes_every_block_once() {
        let s = WavefrontSchedule::compute(&[4, 4], &[vec![-1, 0], vec![0, -1]]);
        let csr = s.into_wavefronts();
        let count = AtomicUsize::new(0);
        let seen = Mutex::new(vec![false; 16]);
        WavefrontPool::new(4).execute(&csr, |b| {
            count.fetch_add(1, Ordering::SeqCst);
            let mut seen = seen.lock().unwrap();
            assert!(!seen[b], "block {b} executed twice");
            seen[b] = true;
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
        assert!(seen.lock().unwrap().iter().all(|&x| x));
    }

    #[test]
    fn levels_are_barriers() {
        // Record a per-block completion stamp; every dependence must
        // complete before its dependent starts.
        let deps = vec![vec![-1, 0], vec![0, -1]];
        let sched = WavefrontSchedule::compute(&[5, 5], &deps);
        let csr = sched.wavefronts().clone();
        let clock = AtomicUsize::new(0);
        let stamps: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
        WavefrontPool::new(3).execute(&csr, |b| {
            let t = clock.fetch_add(1, Ordering::SeqCst);
            stamps[b].store(t + 1, Ordering::SeqCst);
        });
        for i in 0..5usize {
            for j in 0..5usize {
                let b = i * 5 + j;
                for d in &deps {
                    let si = i as i64 + d[0];
                    let sj = j as i64 + d[1];
                    if si >= 0 && sj >= 0 {
                        let src = (si * 5 + sj) as usize;
                        assert!(
                            stamps[src].load(Ordering::SeqCst) < stamps[b].load(Ordering::SeqCst),
                            "dep {src} finished after {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_thread_path() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1], vec![2]]);
        let order = Mutex::new(Vec::new());
        WavefrontPool::new(1).execute(&csr, |b| order.lock().unwrap().push(b));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn stateful_merges_every_worker() {
        // 3 levels, 7 blocks, more workers than blocks in some levels.
        let csr = CsrWavefronts::from_rows(vec![vec![0], vec![1, 2, 3], vec![4, 5, 6]]);
        for threads in [1usize, 2, 4, 8] {
            let mut total = 0usize;
            let mut merges = 0usize;
            WavefrontPool::new(threads)
                .try_execute_stateful(
                    &csr,
                    || 0usize,
                    |count, b| {
                        *count += b + 1;
                        Ok::<(), ()>(())
                    },
                    |count| {
                        total += count;
                        merges += 1;
                    },
                )
                .unwrap();
            // Sum of (b+1) over b in 0..7 regardless of thread count.
            assert_eq!(total, 28, "threads={threads}");
            assert!(merges >= 1);
        }
    }

    #[test]
    fn stateful_propagates_first_error_and_partial_state() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1], vec![2, 3]]);
        for threads in [1usize, 3] {
            let mut total = 0usize;
            let err = WavefrontPool::new(threads)
                .try_execute_stateful(
                    &csr,
                    || 0usize,
                    |count, b| {
                        if b >= 2 {
                            return Err(format!("block {b} failed"));
                        }
                        *count += 1;
                        Ok(())
                    },
                    |count| total += count,
                )
                .unwrap_err();
            assert!(err.starts_with("block "), "threads={threads}: {err}");
            // Level 0 completed before the failing level was entered.
            assert_eq!(total, 2, "threads={threads}");
        }
    }

    #[test]
    fn stateful_empty_schedule() {
        let csr = CsrWavefronts::from_rows(vec![vec![], vec![]]);
        let mut merges = 0usize;
        WavefrontPool::new(4)
            .try_execute_stateful(&csr, || (), |(), _| Ok::<(), ()>(()), |()| merges += 1)
            .unwrap();
        // No level spawns workers, so nothing to merge (multi-thread path).
        assert_eq!(merges, 0);
    }

    #[test]
    fn stateful_propagates_worker_panics_with_payload() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1, 2, 3]]);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            WavefrontPool::new(2)
                .try_execute_stateful(
                    &csr,
                    || (),
                    |(), b| {
                        if b == 1 {
                            panic!("block {b} exploded");
                        }
                        Ok::<(), ()>(())
                    },
                    |()| {},
                )
                .unwrap();
        }))
        .expect_err("worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "block 1 exploded", "original payload must survive");
    }

    #[test]
    fn dataflow_executes_every_block_once_and_respects_deps() {
        let deps = vec![vec![-1i64, 0], vec![0, -1]];
        let graph = BlockGraph::build(&[5, 5], &deps);
        for threads in [1usize, 2, 4, 8] {
            let clock = AtomicUsize::new(0);
            let starts: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
            let ends: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
            let count = AtomicUsize::new(0);
            WavefrontPool::new(threads)
                .try_execute_dataflow(
                    &graph,
                    || (),
                    |(), b| {
                        starts[b].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                        ends[b].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                        Ok::<(), ()>(())
                    },
                    |()| {},
                )
                .unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 25, "threads={threads}");
            for (b, start) in starts.iter().enumerate() {
                for &p in graph.predecessors(b) {
                    assert!(
                        ends[p as usize].load(Ordering::SeqCst)
                            < start.load(Ordering::SeqCst),
                        "threads={threads}: pred {p} still running when {b} started"
                    );
                }
            }
        }
    }

    #[test]
    fn dataflow_merges_states_and_propagates_errors() {
        let graph = BlockGraph::build(&[4, 2], &[vec![-1i64, 0]]);
        for threads in [1usize, 2, 4] {
            let mut total = 0usize;
            WavefrontPool::new(threads)
                .try_execute_dataflow(
                    &graph,
                    || 0usize,
                    |count, b| {
                        *count += b + 1;
                        Ok::<(), ()>(())
                    },
                    |count| total += count,
                )
                .unwrap();
            assert_eq!(total, 36, "threads={threads}");

            let err = WavefrontPool::new(threads)
                .try_execute_dataflow(
                    &graph,
                    || (),
                    |(), b| {
                        if b >= 6 {
                            return Err(format!("block {b} failed"));
                        }
                        Ok(())
                    },
                    |()| {},
                )
                .unwrap_err();
            assert!(err.starts_with("block "), "threads={threads}: {err}");
        }
    }

    #[test]
    fn dataflow_propagates_worker_panics_with_payload() {
        let graph = BlockGraph::build(&[3, 3], &[vec![-1i64, 0], vec![0, -1]]);
        for threads in [1usize, 3] {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                WavefrontPool::new(threads)
                    .try_execute_dataflow(
                        &graph,
                        || (),
                        |(), b| {
                            if b == 4 {
                                panic!("block {b} exploded");
                            }
                            Ok::<(), ()>(())
                        },
                        |()| {},
                    )
                    .unwrap();
            }))
            .expect_err("worker panic must propagate");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "block 4 exploded", "threads={threads}");
        }
    }

    #[test]
    fn dataflow_empty_graph_is_a_no_op() {
        // A 1-block graph with no deps degenerates but must still run.
        let graph = BlockGraph::build(&[1], &[]);
        let mut ran = 0usize;
        WavefrontPool::new(4)
            .try_execute_dataflow(
                &graph,
                || (),
                |(), _| {
                    Ok::<(), ()>(())
                },
                |()| ran += 1,
            )
            .unwrap();
        assert!(ran >= 1);
    }

    #[test]
    fn dataflow_fuses_chains_and_counts_blocks_not_tasks() {
        // 6x6 grid at 4 threads under the default machine model:
        // grain = (36 / (4*4)).clamp(1, 6) = 2, row-clipped into 18
        // tasks of 2 blocks each. The `blocks` counters must keep
        // counting *blocks* and the fusion savings must be attributed
        // to `fused`.
        let obs = Obs::new(instencil_obs::ObsLevel::Trace);
        let graph = BlockGraph::build(&[6, 6], &[vec![-1i64, 0], vec![0, -1]]);
        let pool = WavefrontPool::with_opts(4, obs.clone(), Scheduler::Dataflow);
        assert_eq!(pool.grain_for(&graph), 2);
        let count = AtomicUsize::new(0);
        pool.try_execute_dataflow(
            &graph,
            || (),
            |(), _| {
                count.fetch_add(1, Ordering::SeqCst);
                Ok::<(), ()>(())
            },
            |()| {},
        )
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 36);
        let rec = obs.snapshot();
        let w = &rec.wavefronts[0];
        let blocks: u64 = w.levels[0].workers.iter().map(|x| x.blocks).sum();
        let fused: u64 = w.levels[0].workers.iter().map(|x| x.fused).sum();
        let steals: u64 = w.levels[0].workers.iter().map(|x| x.steals).sum();
        let dist: u64 = w.levels[0].workers.iter().map(|x| x.steal_dist).sum();
        assert_eq!(blocks, 36, "counters count blocks, not tasks");
        assert_eq!(fused, 18, "36 blocks over 18 two-block tasks");
        assert!(dist >= steals, "every steal travels distance >= 1");
    }

    #[test]
    fn bundle_execution_matches_dataflow_and_respects_deps() {
        let deps = vec![vec![-1i64, 0], vec![0, -1]];
        let bundle = instencil_pattern::dataflow::schedule_bundle(&[5, 5], &deps);
        for threads in [1usize, 2, 4, 8] {
            let clock = AtomicUsize::new(0);
            let starts: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
            let ends: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
            let mut total = 0usize;
            WavefrontPool::new(threads)
                .try_execute_bundle(
                    &bundle,
                    || 0usize,
                    |count, b| {
                        starts[b].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                        *count += b + 1;
                        ends[b].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                        Ok::<(), ()>(())
                    },
                    |count| total += count,
                )
                .unwrap();
            assert_eq!(total, 325, "threads={threads}");
            for (b, start) in starts.iter().enumerate() {
                for &p in bundle.graph.predecessors(b) {
                    assert!(
                        ends[p as usize].load(Ordering::SeqCst) < start.load(Ordering::SeqCst),
                        "threads={threads}: pred {p} still running when {b} started"
                    );
                }
            }
        }
    }

    #[test]
    fn dataflow_records_steals_and_busy_at_trace() {
        let obs = Obs::new(instencil_obs::ObsLevel::Trace);
        let graph = BlockGraph::build(&[6, 6], &[vec![-1i64, 0], vec![0, -1]]);
        WavefrontPool::with_opts(4, obs.clone(), Scheduler::Dataflow)
            .try_execute_dataflow(
                &graph,
                || (),
                |(), _| {
                    // Enough work that busy times are nonzero.
                    std::hint::black_box((0..500).sum::<u64>());
                    Ok::<(), ()>(())
                },
                |()| {},
            )
            .unwrap();
        let rec = obs.snapshot();
        assert_eq!(rec.wavefronts.len(), 1);
        let w = &rec.wavefronts[0];
        assert_eq!(w.scheduler, "dataflow");
        assert_eq!(w.levels.len(), 1, "dataflow reports one all-blocks level");
        assert_eq!(w.levels[0].blocks, 36);
        let total: u64 = w.levels[0].workers.iter().map(|x| x.blocks).sum();
        assert_eq!(total, 36, "every block attributed to exactly one worker");
        assert!(w.levels[0].wall_ns > 0);
    }
}
