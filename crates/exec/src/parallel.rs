//! Real multithreaded wavefront execution.
//!
//! [`WavefrontPool`] executes a CSR wavefront schedule with genuine OS
//! threads: within a level, the sub-domain indices are distributed across
//! the workers; a barrier separates consecutive levels — exactly the
//! lowering of `cfd.tiled_loop` with parallel groups described in §3.4
//! ("a sequential for loop iterating over groups that contains a parallel
//! for loop").
//!
//! The pool runs closures over *linearized sub-domain indices*. It has
//! two entry points: [`WavefrontPool::execute`] for stateless workers,
//! and [`WavefrontPool::try_execute_stateful`], which gives each worker
//! private state (the interpreter uses this to run
//! `scf.execute_wavefronts` bodies with a per-thread environment and
//! statistics frame) and propagates the first error.

use std::thread;
use std::time::Instant;

use instencil_obs::{LevelRecord, Obs, WavefrontRecord, WorkerRecord};
use instencil_pattern::CsrWavefronts;

use crate::buffer::overlap;

/// A scoped thread pool executing wavefront schedules.
#[derive(Clone, Debug)]
pub struct WavefrontPool {
    threads: usize,
    obs: Obs,
}

impl WavefrontPool {
    /// Creates a pool with the given number of worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self::with_obs(threads, Obs::off())
    }

    /// Creates a pool that records per-level (and, at
    /// [`instencil_obs::ObsLevel::Trace`], per-worker) timings into `obs`.
    pub fn with_obs(threads: usize, obs: Obs) -> Self {
        WavefrontPool {
            threads: threads.max(1),
            obs,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The observability collector this pool reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Executes `work` for every scheduled sub-domain, level by level.
    /// Within a level the indices are split into contiguous chunks, one
    /// per worker; levels are separated by a join barrier.
    ///
    /// # Panics
    /// Propagates panics from worker closures.
    pub fn execute<F>(&self, schedule: &CsrWavefronts, work: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            for level in schedule.levels() {
                let checker = overlap::LevelChecker::new();
                for &b in level {
                    let _wg = checker.guard(b);
                    work(b);
                }
            }
            return;
        }
        let work = &work;
        for level in schedule.levels() {
            if level.is_empty() {
                continue;
            }
            let checker = &overlap::LevelChecker::new();
            let chunk = level.len().div_ceil(self.threads);
            thread::scope(|s| {
                for part in level.chunks(chunk) {
                    s.spawn(move || {
                        for &b in part {
                            let _wg = checker.guard(b);
                            work(b);
                        }
                    });
                }
            });
        }
    }

    /// Executes a fallible `work` closure over every scheduled sub-domain
    /// with per-worker state.
    ///
    /// Each worker thread gets its own state from `init`; when its chunk
    /// finishes (or fails), the state is handed to `merge` on the calling
    /// thread. Within a level the sub-domain indices are split into
    /// contiguous chunks, one per worker; a join barrier separates
    /// consecutive levels, which is what publishes one level's buffer
    /// stores to the next (see [`crate::buffer`]).
    ///
    /// State is always merged — including the partial state of a worker
    /// that failed — so additive counters (e.g.
    /// [`crate::ExecStats`]) stay consistent. Workers already running
    /// when another worker of the same level fails are not cancelled;
    /// no further level starts after a failure.
    ///
    /// # Errors
    /// Returns the first error produced by `work` (in chunk order within
    /// the failing level).
    ///
    /// # Panics
    /// Propagates panics from worker closures.
    pub fn try_execute_stateful<S, E, I, W, M>(
        &self,
        schedule: &CsrWavefronts,
        init: I,
        work: W,
        mut merge: M,
    ) -> Result<(), E>
    where
        S: Send,
        E: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize) -> Result<(), E> + Sync,
        M: FnMut(S),
    {
        let record = self.obs.enabled();
        let detail = self.obs.detail_enabled();
        let mut level_records: Vec<LevelRecord> = Vec::new();
        if self.threads == 1 {
            let mut state = init();
            let mut outcome = Ok(());
            'levels: for (index, level) in schedule.levels().enumerate() {
                let checker = overlap::LevelChecker::new();
                let t0 = record.then(Instant::now);
                let mut done = 0u64;
                for &b in level {
                    let _wg = checker.guard(b);
                    if let Err(e) = work(&mut state, b) {
                        outcome = Err(e);
                        done += 1; // the failing block still ran
                        self.push_level(&mut level_records, index, level.len(), t0, detail, vec![done]);
                        break 'levels;
                    }
                    done += 1;
                }
                if outcome.is_ok() {
                    self.push_level(&mut level_records, index, level.len(), t0, detail, vec![done]);
                }
            }
            merge(state);
            self.flush_levels(level_records);
            return outcome;
        }
        let init = &init;
        let work = &work;
        for (index, level) in schedule.levels().enumerate() {
            if level.is_empty() {
                continue;
            }
            let checker = &overlap::LevelChecker::new();
            let chunk = level.len().div_ceil(self.threads);
            let t0 = record.then(Instant::now);
            let outcomes: Vec<(S, Result<(), E>, u64, u64)> = thread::scope(|s| {
                let handles: Vec<_> = level
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            let w0 = detail.then(Instant::now);
                            let mut state = init();
                            let mut outcome = Ok(());
                            let mut done = 0u64;
                            for &b in part {
                                done += 1;
                                let _wg = checker.guard(b);
                                if let Err(e) = work(&mut state, b) {
                                    outcome = Err(e);
                                    break;
                                }
                            }
                            let busy = w0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                            (state, outcome, busy, done)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // resume_unwind keeps the original payload (e.g. the
                    // overlap checker's message) instead of wrapping it.
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            });
            let mut first_err = None;
            let mut workers = Vec::new();
            for (state, outcome, busy_ns, blocks) in outcomes {
                merge(state);
                if first_err.is_none() {
                    first_err = outcome.err();
                }
                if detail {
                    workers.push(WorkerRecord { busy_ns, blocks });
                }
            }
            if let Some(t0) = t0 {
                level_records.push(LevelRecord {
                    index,
                    blocks: level.len() as u64,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    workers,
                });
            }
            if let Some(e) = first_err {
                self.flush_levels(level_records);
                return Err(e);
            }
        }
        self.flush_levels(level_records);
        Ok(())
    }

    /// Closes one single-thread level record (`blocks_done` holds the
    /// lone worker's executed-block count).
    fn push_level(
        &self,
        records: &mut Vec<LevelRecord>,
        index: usize,
        width: usize,
        t0: Option<Instant>,
        detail: bool,
        blocks_done: Vec<u64>,
    ) {
        let Some(t0) = t0 else { return };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let workers = if detail {
            blocks_done
                .into_iter()
                .map(|blocks| WorkerRecord {
                    busy_ns: wall_ns,
                    blocks,
                })
                .collect()
        } else {
            Vec::new()
        };
        records.push(LevelRecord {
            index,
            blocks: width as u64,
            wall_ns,
            workers,
        });
    }

    /// Publishes the accumulated per-level records as one
    /// [`WavefrontRecord`] (no-op when nothing was recorded).
    fn flush_levels(&self, levels: Vec<LevelRecord>) {
        if self.obs.enabled() {
            self.obs.record_wavefronts(WavefrontRecord {
                threads: self.threads,
                levels,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_pattern::schedule::WavefrontSchedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn executes_every_block_once() {
        let s = WavefrontSchedule::compute(&[4, 4], &[vec![-1, 0], vec![0, -1]]);
        let csr = s.into_wavefronts();
        let count = AtomicUsize::new(0);
        let seen = Mutex::new(vec![false; 16]);
        WavefrontPool::new(4).execute(&csr, |b| {
            count.fetch_add(1, Ordering::SeqCst);
            let mut seen = seen.lock().unwrap();
            assert!(!seen[b], "block {b} executed twice");
            seen[b] = true;
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
        assert!(seen.lock().unwrap().iter().all(|&x| x));
    }

    #[test]
    fn levels_are_barriers() {
        // Record a per-block completion stamp; every dependence must
        // complete before its dependent starts.
        let deps = vec![vec![-1, 0], vec![0, -1]];
        let sched = WavefrontSchedule::compute(&[5, 5], &deps);
        let csr = sched.wavefronts().clone();
        let clock = AtomicUsize::new(0);
        let stamps: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
        WavefrontPool::new(3).execute(&csr, |b| {
            let t = clock.fetch_add(1, Ordering::SeqCst);
            stamps[b].store(t + 1, Ordering::SeqCst);
        });
        for i in 0..5usize {
            for j in 0..5usize {
                let b = i * 5 + j;
                for d in &deps {
                    let si = i as i64 + d[0];
                    let sj = j as i64 + d[1];
                    if si >= 0 && sj >= 0 {
                        let src = (si * 5 + sj) as usize;
                        assert!(
                            stamps[src].load(Ordering::SeqCst) < stamps[b].load(Ordering::SeqCst),
                            "dep {src} finished after {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_thread_path() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1], vec![2]]);
        let order = Mutex::new(Vec::new());
        WavefrontPool::new(1).execute(&csr, |b| order.lock().unwrap().push(b));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn stateful_merges_every_worker() {
        // 3 levels, 7 blocks, more workers than blocks in some levels.
        let csr = CsrWavefronts::from_rows(vec![vec![0], vec![1, 2, 3], vec![4, 5, 6]]);
        for threads in [1usize, 2, 4, 8] {
            let mut total = 0usize;
            let mut merges = 0usize;
            WavefrontPool::new(threads)
                .try_execute_stateful(
                    &csr,
                    || 0usize,
                    |count, b| {
                        *count += b + 1;
                        Ok::<(), ()>(())
                    },
                    |count| {
                        total += count;
                        merges += 1;
                    },
                )
                .unwrap();
            // Sum of (b+1) over b in 0..7 regardless of thread count.
            assert_eq!(total, 28, "threads={threads}");
            assert!(merges >= 1);
        }
    }

    #[test]
    fn stateful_propagates_first_error_and_partial_state() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1], vec![2, 3]]);
        for threads in [1usize, 3] {
            let mut total = 0usize;
            let err = WavefrontPool::new(threads)
                .try_execute_stateful(
                    &csr,
                    || 0usize,
                    |count, b| {
                        if b >= 2 {
                            return Err(format!("block {b} failed"));
                        }
                        *count += 1;
                        Ok(())
                    },
                    |count| total += count,
                )
                .unwrap_err();
            assert!(err.starts_with("block "), "threads={threads}: {err}");
            // Level 0 completed before the failing level was entered.
            assert_eq!(total, 2, "threads={threads}");
        }
    }

    #[test]
    fn stateful_empty_schedule() {
        let csr = CsrWavefronts::from_rows(vec![vec![], vec![]]);
        let mut merges = 0usize;
        WavefrontPool::new(4)
            .try_execute_stateful(&csr, || (), |(), _| Ok::<(), ()>(()), |()| merges += 1)
            .unwrap();
        // No level spawns workers, so nothing to merge (multi-thread path).
        assert_eq!(merges, 0);
    }
}
