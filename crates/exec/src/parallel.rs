//! Real multithreaded wavefront execution.
//!
//! [`WavefrontPool`] executes a CSR wavefront schedule with genuine OS
//! threads: within a level, the sub-domain indices are distributed across
//! the workers; a barrier separates consecutive levels — exactly the
//! lowering of `cfd.tiled_loop` with parallel groups described in §3.4
//! ("a sequential for loop iterating over groups that contains a parallel
//! for loop").
//!
//! The pool runs closures over *linearized sub-domain indices*; the
//! numeric solvers use it to run wavefront Gauss-Seidel with real threads
//! (the IR interpreter itself stays single-threaded).

use crossbeam::thread;

use instencil_pattern::CsrWavefronts;

/// A scoped thread pool executing wavefront schedules.
#[derive(Clone, Copy, Debug)]
pub struct WavefrontPool {
    threads: usize,
}

impl WavefrontPool {
    /// Creates a pool with the given number of worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        WavefrontPool {
            threads: threads.max(1),
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `work` for every scheduled sub-domain, level by level.
    /// Within a level the indices are split into contiguous chunks, one
    /// per worker; levels are separated by a join barrier.
    ///
    /// # Panics
    /// Propagates panics from worker closures.
    pub fn execute<F>(&self, schedule: &CsrWavefronts, work: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            for level in schedule.levels() {
                for &b in level {
                    work(b);
                }
            }
            return;
        }
        let work = &work;
        for level in schedule.levels() {
            if level.is_empty() {
                continue;
            }
            let chunk = level.len().div_ceil(self.threads);
            thread::scope(|s| {
                for part in level.chunks(chunk) {
                    s.spawn(move |_| {
                        for &b in part {
                            work(b);
                        }
                    });
                }
            })
            .expect("wavefront worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_pattern::schedule::WavefrontSchedule;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn executes_every_block_once() {
        let s = WavefrontSchedule::compute(&[4, 4], &[vec![-1, 0], vec![0, -1]]);
        let csr = s.into_wavefronts();
        let count = AtomicUsize::new(0);
        let seen = Mutex::new(vec![false; 16]);
        WavefrontPool::new(4).execute(&csr, |b| {
            count.fetch_add(1, Ordering::SeqCst);
            let mut seen = seen.lock().unwrap();
            assert!(!seen[b], "block {b} executed twice");
            seen[b] = true;
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
        assert!(seen.lock().unwrap().iter().all(|&x| x));
    }

    #[test]
    fn levels_are_barriers() {
        // Record a per-block completion stamp; every dependence must
        // complete before its dependent starts.
        let deps = vec![vec![-1, 0], vec![0, -1]];
        let sched = WavefrontSchedule::compute(&[5, 5], &deps);
        let csr = sched.wavefronts().clone();
        let clock = AtomicUsize::new(0);
        let stamps: Vec<AtomicUsize> = (0..25).map(|_| AtomicUsize::new(0)).collect();
        WavefrontPool::new(3).execute(&csr, |b| {
            let t = clock.fetch_add(1, Ordering::SeqCst);
            stamps[b].store(t + 1, Ordering::SeqCst);
        });
        for i in 0..5usize {
            for j in 0..5usize {
                let b = i * 5 + j;
                for d in &deps {
                    let si = i as i64 + d[0];
                    let sj = j as i64 + d[1];
                    if si >= 0 && sj >= 0 {
                        let src = (si * 5 + sj) as usize;
                        assert!(
                            stamps[src].load(Ordering::SeqCst) < stamps[b].load(Ordering::SeqCst),
                            "dep {src} finished after {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_thread_path() {
        let csr = CsrWavefronts::from_rows(vec![vec![0, 1], vec![2]]);
        let order = Mutex::new(Vec::new());
        WavefrontPool::new(1).execute(&csr, |b| order.lock().unwrap().push(b));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }
}
