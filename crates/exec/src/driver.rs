//! Convenience driver for iterative kernels.
//!
//! Kernels compiled by `instencil-core` perform one sweep per call and
//! mutate their argument buffers in place; [`run_sweeps`] drives the
//! iteration loop (the granularity at which the paper synchronizes
//! between Gauss-Seidel iterations). [`run_sweeps_threaded`] does the
//! same with a wavefront worker count; [`run_compiled_sweeps`] reads the
//! count from the `threads` knob of the module's [`PipelineOptions`].

use instencil_core::pipeline::CompiledModule;
use instencil_ir::Module;

use crate::buffer::BufferView;
use crate::interp::{ExecError, Interpreter};
use crate::stats::ExecStats;
use crate::value::RtVal;

/// Runs `func` of `module` for `iterations` sweeps over the given
/// buffers (passed as memref arguments each sweep). Returns accumulated
/// execution statistics.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_sweeps(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<ExecStats, ExecError> {
    run_sweeps_threaded(module, func, buffers, iterations, 1)
}

/// [`run_sweeps`] with `scf.execute_wavefronts` levels spread over
/// `threads` OS threads. Results are bit-identical to `threads == 1`
/// (sub-domains within a wavefront level are independent), and so are
/// the returned statistics.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_sweeps_threaded(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
    threads: usize,
) -> Result<ExecStats, ExecError> {
    let mut interp = Interpreter::with_threads(threads);
    for _ in 0..iterations {
        let args: Vec<RtVal> = buffers.iter().cloned().map(RtVal::Buf).collect();
        interp.call(module, func, args)?;
    }
    Ok(interp.stats)
}

/// Runs sweeps of a compiled module, honoring the `threads` knob of the
/// [`PipelineOptions`](instencil_core::pipeline::PipelineOptions) it was
/// compiled with.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_compiled_sweeps(
    compiled: &CompiledModule,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<ExecStats, ExecError> {
    run_sweeps_threaded(
        &compiled.module,
        func,
        buffers,
        iterations,
        compiled.options.threads,
    )
}

/// Runs alternating-buffer sweeps for out-of-place kernels (Jacobi):
/// `func(X, B, Y)` with `X`/`Y` swapped every iteration. Returns the
/// buffer holding the final solution.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_jacobi_sweeps(
    module: &Module,
    func: &str,
    x: &BufferView,
    b: &BufferView,
    y: &BufferView,
    iterations: usize,
) -> Result<BufferView, ExecError> {
    let mut interp = Interpreter::new();
    let mut cur = x.clone();
    let mut next = y.clone();
    for _ in 0..iterations {
        interp.call(
            module,
            func,
            vec![
                RtVal::Buf(cur.clone()),
                RtVal::Buf(b.clone()),
                RtVal::Buf(next.clone()),
            ],
        )?;
        std::mem::swap(&mut cur, &mut next);
    }
    Ok(cur)
}

/// Runs sweeps until the in-place solution stops changing: iterates
/// `func` and measures the max-norm delta of `buffers[watch]` between
/// consecutive sweeps; stops when it drops below `tol`. Returns the
/// number of sweeps executed (capped at `max_sweeps`).
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_until_converged(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    watch: usize,
    tol: f64,
    max_sweeps: usize,
) -> Result<usize, ExecError> {
    let mut interp = Interpreter::new();
    let mut previous = buffers[watch].to_vec();
    for sweep in 1..=max_sweeps {
        let args: Vec<RtVal> = buffers.iter().cloned().map(RtVal::Buf).collect();
        interp.call(module, func, args)?;
        let current = buffers[watch].to_vec();
        let delta = previous
            .iter()
            .zip(&current)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if delta < tol {
            return Ok(sweep);
        }
        previous = current;
    }
    Ok(max_sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_core::kernels;
    use instencil_core::pipeline::reference_module;

    #[test]
    fn run_sweeps_mutates_in_place() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        let w = BufferView::alloc(&[1, 6, 6]);
        w.store(&[0, 3, 3], 5.0); // impulse: not a fixed point of averaging
        let b = BufferView::alloc(&[1, 6, 6]);
        let before = w.to_vec();
        let stats = run_sweeps(&m, "gs5", &[w.clone(), b], 2).unwrap();
        assert_ne!(w.to_vec(), before);
        assert_eq!(stats.reference_ops, 2);
        assert!(stats.loads > 0);
    }

    #[test]
    fn run_until_converged_reaches_fixed_point() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        let w = BufferView::alloc(&[1, 10, 10]);
        // Boundary 1, interior 0 → converges to all-ones.
        for i in 0..10i64 {
            for j in 0..10i64 {
                if i == 0 || j == 0 || i == 9 || j == 9 {
                    w.store(&[0, i, j], 1.0);
                }
            }
        }
        let b = BufferView::alloc(&[1, 10, 10]);
        let sweeps = run_until_converged(&m, "gs5", &[w.clone(), b], 0, 1e-9, 5_000).unwrap();
        assert!(sweeps < 5_000, "must converge");
        assert!((w.load(&[0, 5, 5]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compiled_sweeps_honor_thread_knob() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let m = kernels::gauss_seidel_5pt_module();
        let n = 12usize;
        let init = |_: &()| {
            let w = BufferView::alloc(&[1, n, n]);
            for i in 0..n as i64 {
                for j in 0..n as i64 {
                    w.store(&[0, i, j], ((i * 7 + j * 3) % 11) as f64 * 0.1);
                }
            }
            (w, BufferView::alloc(&[1, n, n]))
        };
        let seq = compile(&m, &PipelineOptions::new(vec![4, 4], vec![2, 2])).unwrap();
        let par = compile(
            &m,
            &PipelineOptions::new(vec![4, 4], vec![2, 2]).threads(3),
        )
        .unwrap();
        let (ws, bs) = init(&());
        let stats_seq = run_compiled_sweeps(&seq, "gs5", &[ws.clone(), bs], 2).unwrap();
        let (wp, bp) = init(&());
        let stats_par = run_compiled_sweeps(&par, "gs5", &[wp.clone(), bp], 2).unwrap();
        assert_eq!(ws.to_vec(), wp.to_vec(), "bit-identical results");
        assert_eq!(stats_seq, stats_par, "thread-count-invariant stats");
        assert!(stats_par.wavefront_levels > 0);
    }

    #[test]
    fn jacobi_swaps_buffers() {
        let m = reference_module(&kernels::jacobi_5pt_module()).unwrap();
        let x = BufferView::alloc(&[1, 5, 5]);
        x.fill(1.0);
        let b = BufferView::alloc(&[1, 5, 5]);
        let y = BufferView::alloc(&[1, 5, 5]);
        let out = run_jacobi_sweeps(&m, "jacobi5", &x, &b, &y, 1).unwrap();
        // After one sweep the result lives in `y`.
        assert!(out.aliases(&y));
        // Interior became the 5-point average of ones = 1.0; the borders
        // of y stay zero (only the interior is written).
        assert_eq!(out.load(&[0, 2, 2]), 1.0);
        assert_eq!(out.load(&[0, 0, 0]), 0.0);
    }
}
