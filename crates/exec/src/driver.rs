//! Convenience driver for iterative kernels.
//!
//! Kernels compiled by `instencil-core` perform one sweep per call and
//! mutate their argument buffers in place; [`run_sweeps`] drives the
//! iteration loop (the granularity at which the paper synchronizes
//! between Gauss-Seidel iterations). [`run_sweeps_threaded`] does the
//! same with a wavefront worker count; [`run_compiled_sweeps`] reads the
//! `threads` and `engine` knobs from the module's [`PipelineOptions`].
//!
//! # Engine selection
//!
//! Every helper here executes through [`Runner`], which compiles the
//! module to bytecode once up front ([`Engine::Bytecode`], the default)
//! and replays the tapes each sweep. Modules outside the lowered subset
//! — reference modules with structured `cfd` ops — make bytecode
//! compilation report [`BcCompileError::Unsupported`], and the runner
//! falls back to the tree-walking [`Interpreter`]; both engines are
//! bit-identical in results and statistics, so the fallback is
//! observable as wall-clock time and — when a collector is attached via
//! [`Runner::with_obs`] — as an `engine-fallback` event surfaced in the
//! [`RunReport`] together with the compile/execute time split.
//!
//! [`PipelineOptions`]: instencil_core::pipeline::PipelineOptions

use instencil_core::pipeline::{CompiledModule, Engine};
use instencil_ir::Module;
use instencil_obs::{Obs, RunReport};
use instencil_pattern::dataflow::Scheduler;

use crate::buffer::BufferView;
use crate::bytecode::BytecodeEngine;
use crate::BcOptions;
use crate::compile::BcCompileError;
use crate::interp::{ExecError, Interpreter};
use crate::stats::ExecStats;
use crate::value::RtVal;

/// Stable engine name used in run reports.
fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Interp => "interp",
        Engine::Bytecode => "bytecode",
        Engine::BytecodeDispatch => "bytecode-dispatch",
    }
}

/// The engine actually bound by a [`Runner`].
#[derive(Debug)]
enum RunnerInner<'m> {
    /// Tree-walking reference interpreter.
    Interp {
        /// The module under execution.
        module: &'m Module,
        /// The interpreter instance (owns accumulated statistics).
        interp: Interpreter,
    },
    /// Compiled bytecode tapes.
    Bytecode(BytecodeEngine),
}

/// A module bound to an execution engine: bytecode when the module is in
/// the lowered subset (or when explicitly requested), the tree-walking
/// interpreter otherwise. Remembers which engine was *requested* and why
/// a fallback fired, so run reports can surface the decision.
#[derive(Debug)]
pub struct Runner<'m> {
    inner: RunnerInner<'m>,
    requested: Engine,
    fallback: Option<String>,
    obs: Obs,
    threads: usize,
}

/// Resolves the `threads` knob: `0` means "auto" — one worker per
/// available hardware thread — and any explicit request is clamped to
/// the host's available parallelism. Oversubscribing wavefront workers
/// is never useful here: the workers are CPU-bound and barrier- or
/// steal-coupled, so extra OS threads on the same cores only add
/// context-switch latency to every level/in-degree handoff (this is
/// exactly the inverse-scaling pathology BENCH_exec.json showed on
/// single-core hosts: 621 -> 1174 ns/point from 1 to 8 "threads").
/// This is the single place the sentinel and the clamp are applied;
/// the engines and [`WavefrontPool`](crate::parallel::WavefrontPool)
/// run whatever count they are given, so tests can still exercise true
/// multi-worker interleavings on any host.
fn resolve_threads(threads: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads == 0 {
        host
    } else {
        threads.min(host)
    }
}

impl<'m> Runner<'m> {
    /// Binds `module` to the requested engine with a wavefront worker
    /// count. [`Engine::Bytecode`] falls back to the interpreter when
    /// the module contains ops outside the lowered subset (structured
    /// `cfd` reference ops); a *malformed* module fails on either
    /// engine, so that error is surfaced instead of masked by fallback.
    ///
    /// # Errors
    /// Returns an error only for [`BcCompileError::Malformed`] modules.
    pub fn new(module: &'m Module, engine: Engine, threads: usize) -> Result<Self, ExecError> {
        Self::with_obs(module, engine, threads, Obs::off())
    }

    /// [`Runner::new`] recording into `obs`: bytecode compilation under
    /// an `engine:compile` span, each call under `engine:execute`, the
    /// interpreter fallback as an `engine-fallback` event, and wavefront
    /// timings through the engines' pools.
    ///
    /// # Errors
    /// Returns an error only for [`BcCompileError::Malformed`] modules.
    pub fn with_obs(
        module: &'m Module,
        engine: Engine,
        threads: usize,
        obs: Obs,
    ) -> Result<Self, ExecError> {
        Self::with_opts(module, engine, threads, Scheduler::Levels, obs)
    }

    /// [`Runner::with_obs`] with an explicit wavefront [`Scheduler`].
    /// `threads == 0` means "auto": one worker per available hardware
    /// thread (resolved here, nowhere else).
    ///
    /// # Errors
    /// Returns an error only for [`BcCompileError::Malformed`] modules.
    pub fn with_opts(
        module: &'m Module,
        engine: Engine,
        threads: usize,
        scheduler: Scheduler,
        obs: Obs,
    ) -> Result<Self, ExecError> {
        let threads = resolve_threads(threads);
        let mut fallback = None;
        let inner = match engine {
            Engine::Interp => RunnerInner::Interp {
                module,
                interp: Interpreter::with_opts(threads, obs.clone(), scheduler),
            },
            Engine::Bytecode | Engine::BytecodeDispatch => {
                let compiled = {
                    let _span = obs.span("engine:compile");
                    let opts = BcOptions {
                        specialize_runs: engine == Engine::Bytecode,
                    };
                    BytecodeEngine::compile_with_opts(module, threads, obs.clone(), opts)
                        .map(|e| e.with_scheduler(scheduler))
                };
                match compiled {
                    Ok(engine) => RunnerInner::Bytecode(engine),
                    Err(BcCompileError::Unsupported(what)) => {
                        let reason = format!("unsupported by bytecode: {what}");
                        obs.event("engine-fallback", &reason);
                        fallback = Some(reason);
                        RunnerInner::Interp {
                            module,
                            interp: Interpreter::with_opts(threads, obs.clone(), scheduler),
                        }
                    }
                    Err(e @ BcCompileError::Malformed(_)) => {
                        return Err(ExecError::new(e.to_string()))
                    }
                }
            }
        };
        Ok(Runner {
            inner,
            requested: engine,
            fallback,
            obs,
            threads,
        })
    }

    /// Calls a function of the bound module by name.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn call(&mut self, name: &str, args: Vec<RtVal>) -> Result<Vec<RtVal>, ExecError> {
        let _span = self.obs.span("engine:execute");
        match &mut self.inner {
            RunnerInner::Interp { module, interp } => interp.call(module, name, args),
            RunnerInner::Bytecode(engine) => engine.call(name, args),
        }
    }

    /// Calls a function `sweeps` times over the same arguments,
    /// returning the last call's results. On the bytecode engine the
    /// whole batch drains as **one** fused dataflow pass over the
    /// sweep-extended dependence graph (block `b` of sweep `s+1` starts
    /// as soon as its sweep-`s` neighborhood retires); results and
    /// statistics are bit-identical to `sweeps` eager [`Self::call`]s.
    /// The interpreter has no batched path and loops eagerly.
    ///
    /// # Errors
    /// Propagates engine failures; the first failing sweep aborts.
    pub fn call_sweeps(
        &mut self,
        name: &str,
        args: Vec<RtVal>,
        sweeps: usize,
    ) -> Result<Vec<RtVal>, ExecError> {
        let _span = self.obs.span("engine:execute");
        match &mut self.inner {
            RunnerInner::Interp { module, interp } => {
                if sweeps == 0 {
                    return Err(ExecError::new("sweep batch needs at least one sweep"));
                }
                let mut out = Vec::new();
                for _ in 0..sweeps {
                    out = interp.call(module, name, args.clone())?;
                }
                Ok(out)
            }
            RunnerInner::Bytecode(engine) => engine.call_sweeps(name, args, sweeps),
        }
    }

    /// Whether the bound engine can fuse queued sweeps into one drain
    /// (bytecode yes, interpreter no). [`SweepBatch`] uses this to pick
    /// its effective depth, so interpreter-bound modules keep exact
    /// eager pacing (e.g. convergence checks after every sweep).
    pub fn supports_sweep_batching(&self) -> bool {
        matches!(self.inner, RunnerInner::Bytecode(_))
    }

    /// An OPS-style lazy sweep queue over this runner: [`SweepBatch::queue`]
    /// records the intent to run one more identical in-place sweep and
    /// flushes automatically once `depth` are pending; explicit
    /// [`SweepBatch::flush`] drains the remainder (a batch boundary —
    /// buffers are guaranteed up to date only after a flush). Depth
    /// clamps to 1 on engines without a fused path.
    pub fn sweep_batch<'r>(
        &'r mut self,
        func: &str,
        args: Vec<RtVal>,
        depth: usize,
    ) -> SweepBatch<'r, 'm> {
        let depth = if self.supports_sweep_batching() {
            depth.max(1)
        } else {
            1
        };
        SweepBatch {
            runner: self,
            func: func.to_owned(),
            args,
            depth,
            queued: 0,
        }
    }

    /// Statistics accumulated across calls.
    pub fn stats(&self) -> ExecStats {
        match &self.inner {
            RunnerInner::Interp { interp, .. } => interp.stats,
            RunnerInner::Bytecode(engine) => engine.stats,
        }
    }

    /// Which engine actually executes (after any fallback).
    pub fn engine(&self) -> Engine {
        match &self.inner {
            RunnerInner::Interp { .. } => Engine::Interp,
            // Both bytecode flavors bind the same engine type; the
            // requested variant records which compile options were used.
            RunnerInner::Bytecode(_) => self.requested,
        }
    }

    /// The engine the caller asked for.
    pub fn requested_engine(&self) -> Engine {
        self.requested
    }

    /// The resolved wavefront worker count (`threads == 0` requests
    /// resolve to the available hardware parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Why the runner fell back to the interpreter, when it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback.as_deref()
    }

    /// The attached collector ([`Obs::off`] unless built via
    /// [`Runner::with_obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Builds the run report from everything the attached collector has
    /// recorded, filling in the engine section (requested/actual engine,
    /// fallback reason) and the [`ExecStats`] counters. With the
    /// collector off this is exactly [`RunReport::default`].
    pub fn report(&self) -> RunReport {
        if !self.obs.enabled() {
            return RunReport::default();
        }
        let mut report = self.obs.report();
        report.engine.requested = engine_name(self.requested).into();
        report.engine.actual = engine_name(self.engine()).into();
        report.engine.fallback_reason = self.fallback.clone();
        report.exec_stats = Some(self.stats().to_json());
        report
    }

    /// Folds everything the attached collector's per-worker event rings
    /// have recorded (plus the pass/engine spans) into Chrome/Perfetto
    /// `trace_event` JSON — load the string in `chrome://tracing` or
    /// <https://ui.perfetto.dev>. Empty-but-valid document unless the
    /// collector is at [`ObsLevel::Trace`](instencil_obs::ObsLevel).
    pub fn chrome_trace(&self) -> String {
        let rec = self.obs.snapshot();
        let rings = instencil_obs::trace::merge_rings(&rec.rings);
        instencil_obs::trace::chrome_trace(&rings, &rec.spans).to_string()
    }
}

/// Default lazy-queue depth used by the sweep-driving helpers: deep
/// enough to amortize the per-call fixed cost (dispatch, register file,
/// prefix tape, schedule lookup) over a batch, shallow enough that
/// convergence checks at batch boundaries overshoot the true stopping
/// sweep by at most 7. The autotuner refines this per problem via
/// [`best_batch_depth`](instencil_machine::best_batch_depth) into
/// [`TunedTiles::batch`](instencil_machine::TunedTiles).
pub const DEFAULT_SWEEP_BATCH: usize = 8;

/// A lazy queue of identical in-place sweeps over one [`Runner`]
/// (OPS-style lazy execution): [`SweepBatch::queue`] only records the
/// intent to sweep; once `depth` sweeps are pending — or on an explicit
/// [`SweepBatch::flush`] — the whole batch drains as one fused dataflow
/// pass over the sweep-extended dependence graph. Buffers are
/// guaranteed up to date only at batch boundaries (after a flush).
/// Dropping a batch with sweeps still queued panics in debug builds;
/// call [`SweepBatch::flush`] (or [`SweepBatch::finish`]) first.
#[derive(Debug)]
pub struct SweepBatch<'r, 'm> {
    runner: &'r mut Runner<'m>,
    func: String,
    args: Vec<RtVal>,
    depth: usize,
    queued: usize,
}

impl SweepBatch<'_, '_> {
    /// Queues one more sweep; drains automatically when the queue
    /// reaches the batch depth.
    ///
    /// # Errors
    /// Propagates engine failures from an automatic flush.
    pub fn queue(&mut self) -> Result<(), ExecError> {
        self.queued += 1;
        if self.queued >= self.depth {
            self.flush()?;
        }
        Ok(())
    }

    /// Drains every queued sweep as one fused batch (no-op when the
    /// queue is empty). After this returns, the argument buffers hold
    /// the state after all queued sweeps.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn flush(&mut self) -> Result<(), ExecError> {
        let k = std::mem::take(&mut self.queued);
        if k > 0 {
            self.runner.call_sweeps(&self.func, self.args.clone(), k)?;
        }
        Ok(())
    }

    /// Flushes and consumes the batch, releasing the runner borrow.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn finish(mut self) -> Result<(), ExecError> {
        self.flush()
    }

    /// Sweeps queued but not yet executed.
    pub fn pending(&self) -> usize {
        self.queued
    }

    /// The flush threshold this batch was built with (1 on engines
    /// without a fused path).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for SweepBatch<'_, '_> {
    fn drop(&mut self) {
        debug_assert!(
            self.queued == 0 || std::thread::panicking(),
            "SweepBatch dropped with {} sweep(s) still queued; call flush()",
            self.queued
        );
    }
}

/// Runs `func` of `module` for `iterations` sweeps over the given
/// buffers (passed as memref arguments each sweep). Returns accumulated
/// execution statistics.
///
/// # Errors
/// Propagates engine failures.
pub fn run_sweeps(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<ExecStats, ExecError> {
    run_sweeps_threaded(module, func, buffers, iterations, 1)
}

/// [`run_sweeps`] with `scf.execute_wavefronts` levels spread over
/// `threads` OS threads. Results are bit-identical to `threads == 1`
/// (sub-domains within a wavefront level are independent), and so are
/// the returned statistics.
///
/// # Errors
/// Propagates engine failures.
pub fn run_sweeps_threaded(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
    threads: usize,
) -> Result<ExecStats, ExecError> {
    run_sweeps_with(module, func, buffers, iterations, threads, Engine::default())
}

/// [`run_sweeps_threaded`] with an explicit engine choice.
///
/// # Errors
/// Propagates engine failures.
pub fn run_sweeps_with(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
    threads: usize,
    engine: Engine,
) -> Result<ExecStats, ExecError> {
    run_sweeps_opts(module, func, buffers, iterations, threads, engine, Scheduler::Levels)
}

/// [`run_sweeps_with`] with an explicit wavefront [`Scheduler`]. Results
/// and statistics are bit-identical across schedulers (enforced by
/// `tests/engine_equiv.rs`); only wall-clock time changes.
///
/// # Errors
/// Propagates engine failures.
#[allow(clippy::too_many_arguments)]
pub fn run_sweeps_opts(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
    threads: usize,
    engine: Engine,
    scheduler: Scheduler,
) -> Result<ExecStats, ExecError> {
    let mut runner = Runner::with_opts(module, engine, threads, scheduler, Obs::off())?;
    let args: Vec<RtVal> = buffers.iter().cloned().map(RtVal::Buf).collect();
    let mut batch = runner.sweep_batch(func, args, DEFAULT_SWEEP_BATCH);
    for _ in 0..iterations {
        batch.queue()?;
    }
    batch.finish()?;
    Ok(runner.stats())
}

/// Runs sweeps of a compiled module, honoring the `threads` and `engine`
/// knobs of the [`PipelineOptions`](instencil_core::pipeline::PipelineOptions)
/// it was compiled with.
///
/// # Errors
/// Propagates engine failures.
pub fn run_compiled_sweeps(
    compiled: &CompiledModule,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<ExecStats, ExecError> {
    let runner = run_compiled_runner(compiled, func, buffers, iterations)?;
    Ok(runner.stats())
}

/// [`run_compiled_sweeps`] that additionally renders the full
/// [`RunReport`]: pipeline pass spans recorded while `compiled` was
/// built, engine compile/execute split, wavefront timelines, events and
/// the [`ExecStats`] counters. With `obs: ObsLevel::Off` in the
/// pipeline options this is exactly [`RunReport::default`].
///
/// # Errors
/// Propagates engine failures.
pub fn run_compiled_report(
    compiled: &CompiledModule,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<RunReport, ExecError> {
    let runner = run_compiled_runner(compiled, func, buffers, iterations)?;
    Ok(runner.report())
}

/// Shared driver loop: binds a runner to the module's own collector
/// (the one its pipeline passes were recorded into) and runs the sweeps.
fn run_compiled_runner<'m>(
    compiled: &'m CompiledModule,
    func: &str,
    buffers: &[BufferView],
    iterations: usize,
) -> Result<Runner<'m>, ExecError> {
    let mut runner = Runner::with_opts(
        &compiled.module,
        compiled.options.engine,
        compiled.options.threads,
        compiled.options.scheduler,
        compiled.obs.clone(),
    )?;
    for _ in 0..iterations {
        let args: Vec<RtVal> = buffers.iter().cloned().map(RtVal::Buf).collect();
        runner.call(func, args)?;
    }
    Ok(runner)
}

/// Runs alternating-buffer sweeps for out-of-place kernels (Jacobi):
/// `func(X, B, Y)` with `X`/`Y` swapped every iteration. Returns the
/// buffer holding the final solution.
///
/// # Errors
/// Propagates engine failures.
pub fn run_jacobi_sweeps(
    module: &Module,
    func: &str,
    x: &BufferView,
    b: &BufferView,
    y: &BufferView,
    iterations: usize,
) -> Result<BufferView, ExecError> {
    let mut runner = Runner::new(module, Engine::default(), 1)?;
    let mut cur = x.clone();
    let mut next = y.clone();
    for _ in 0..iterations {
        runner.call(
            func,
            vec![
                RtVal::Buf(cur.clone()),
                RtVal::Buf(b.clone()),
                RtVal::Buf(next.clone()),
            ],
        )?;
        std::mem::swap(&mut cur, &mut next);
    }
    Ok(cur)
}

/// Runs sweeps until the in-place solution stops changing: iterates
/// `func` and measures the max-norm delta of `buffers[watch]` between
/// consecutive sweeps; stops when it drops below `tol`. Returns the
/// number of sweeps executed (capped at `max_sweeps`).
///
/// On the bytecode engine, sweeps drain through a [`SweepBatch`] of
/// depth [`DEFAULT_SWEEP_BATCH`] and convergence is checked only at
/// batch boundaries — the residual fold
/// ([`BufferView::max_delta_update`]) is fused into one pass over the
/// watched buffer per batch, so the returned count may overshoot the
/// true stopping sweep by up to `depth − 1` sweeps (extra Gauss-Seidel
/// sweeps past the fixed point are harmless: the fixed point is
/// stationary). Interpreter-bound modules keep exact per-sweep pacing.
///
/// # Errors
/// Propagates engine failures.
pub fn run_until_converged(
    module: &Module,
    func: &str,
    buffers: &[BufferView],
    watch: usize,
    tol: f64,
    max_sweeps: usize,
) -> Result<usize, ExecError> {
    let mut runner = Runner::new(module, Engine::default(), 1)?;
    let depth = if runner.supports_sweep_batching() {
        DEFAULT_SWEEP_BATCH
    } else {
        1
    };
    let args: Vec<RtVal> = buffers.iter().cloned().map(RtVal::Buf).collect();
    let mut previous = buffers[watch].to_vec();
    let mut done = 0usize;
    while done < max_sweeps {
        let k = depth.min(max_sweeps - done);
        runner.call_sweeps(func, args.clone(), k)?;
        done += k;
        // Batch boundary: one fused pass computes the max-norm delta
        // against the last boundary and refreshes the snapshot in place.
        let delta = buffers[watch].max_delta_update(&mut previous);
        if delta < tol {
            return Ok(done);
        }
    }
    Ok(max_sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instencil_core::kernels;
    use instencil_core::pipeline::reference_module;

    #[test]
    fn run_sweeps_mutates_in_place() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        let w = BufferView::alloc(&[1, 6, 6]);
        w.store(&[0, 3, 3], 5.0); // impulse: not a fixed point of averaging
        let b = BufferView::alloc(&[1, 6, 6]);
        let before = w.to_vec();
        let stats = run_sweeps(&m, "gs5", &[w.clone(), b], 2).unwrap();
        assert_ne!(w.to_vec(), before);
        assert_eq!(stats.reference_ops, 2);
        assert!(stats.loads > 0);
    }

    #[test]
    fn reference_modules_fall_back_to_interp() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        let runner = Runner::new(&m, Engine::Bytecode, 1).unwrap();
        assert_eq!(
            runner.engine(),
            Engine::Interp,
            "structured cfd ops must fall back to the tree-walker"
        );
    }

    #[test]
    fn lowered_modules_run_on_bytecode() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let c = compile(
            &kernels::gauss_seidel_5pt_module(),
            &PipelineOptions::new(vec![4, 4], vec![2, 2]),
        )
        .unwrap();
        let runner = Runner::new(&c.module, Engine::Bytecode, 1).unwrap();
        assert_eq!(runner.engine(), Engine::Bytecode);
    }

    #[test]
    fn run_until_converged_reaches_fixed_point() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        let w = BufferView::alloc(&[1, 10, 10]);
        // Boundary 1, interior 0 → converges to all-ones.
        for i in 0..10i64 {
            for j in 0..10i64 {
                if i == 0 || j == 0 || i == 9 || j == 9 {
                    w.store(&[0, i, j], 1.0);
                }
            }
        }
        let b = BufferView::alloc(&[1, 10, 10]);
        let sweeps = run_until_converged(&m, "gs5", &[w.clone(), b], 0, 1e-9, 5_000).unwrap();
        assert!(sweeps < 5_000, "must converge");
        assert!((w.load(&[0, 5, 5]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compiled_sweeps_honor_thread_and_engine_knobs() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let m = kernels::gauss_seidel_5pt_module();
        let n = 12usize;
        let init = |_: &()| {
            let w = BufferView::alloc(&[1, n, n]);
            for i in 0..n as i64 {
                for j in 0..n as i64 {
                    w.store(&[0, i, j], ((i * 7 + j * 3) % 11) as f64 * 0.1);
                }
            }
            (w, BufferView::alloc(&[1, n, n]))
        };
        let seq = compile(
            &m,
            &PipelineOptions::new(vec![4, 4], vec![2, 2]).engine(Engine::Interp),
        )
        .unwrap();
        let par = compile(
            &m,
            &PipelineOptions::new(vec![4, 4], vec![2, 2]).threads(3),
        )
        .unwrap();
        let (ws, bs) = init(&());
        let stats_seq = run_compiled_sweeps(&seq, "gs5", &[ws.clone(), bs], 2).unwrap();
        let (wp, bp) = init(&());
        let stats_par = run_compiled_sweeps(&par, "gs5", &[wp.clone(), bp], 2).unwrap();
        assert_eq!(ws.to_vec(), wp.to_vec(), "bit-identical across engines");
        assert_eq!(stats_seq, stats_par, "engine- and thread-invariant stats");
        assert!(stats_par.wavefront_levels > 0);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let c = compile(
            &kernels::gauss_seidel_5pt_module(),
            &PipelineOptions::new(vec![4, 4], vec![2, 2]).threads(0),
        )
        .unwrap();
        assert_eq!(c.options.threads, 0, "the sentinel survives compilation");
        let runner = Runner::new(&c.module, Engine::Bytecode, 0).unwrap();
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(runner.threads(), auto, "0 means one worker per hw thread");
        assert!(runner.threads() >= 1);
        // Explicit counts are clamped to the host: oversubscribed
        // wavefront workers only trade useful work for context
        // switches (see `resolve_threads`).
        let runner = Runner::new(&c.module, Engine::Bytecode, 3).unwrap();
        assert_eq!(runner.threads(), 3.min(auto));
        let runner = Runner::new(&c.module, Engine::Bytecode, auto + 7).unwrap();
        assert_eq!(runner.threads(), auto, "requests beyond the host clamp");
    }

    #[test]
    fn compiled_dataflow_matches_levels_bitwise() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let m = kernels::gauss_seidel_5pt_module();
        let init = || {
            let w = BufferView::alloc(&[1, 14, 14]);
            for i in 0..14i64 {
                for j in 0..14i64 {
                    w.store(&[0, i, j], ((i * 5 + j * 11) % 13) as f64 * 0.25);
                }
            }
            (w, BufferView::alloc(&[1, 14, 14]))
        };
        let levels = compile(
            &m,
            &PipelineOptions::new(vec![3, 3], vec![2, 2]).threads(4),
        )
        .unwrap();
        let dataflow = compile(
            &m,
            &PipelineOptions::new(vec![3, 3], vec![2, 2])
                .threads(4)
                .scheduler(Scheduler::Dataflow),
        )
        .unwrap();
        let (wl, bl) = init();
        let stats_l = run_compiled_sweeps(&levels, "gs5", &[wl.clone(), bl], 3).unwrap();
        let (wd, bd) = init();
        let stats_d = run_compiled_sweeps(&dataflow, "gs5", &[wd.clone(), bd], 3).unwrap();
        assert_eq!(wl.to_vec(), wd.to_vec(), "bit-identical across schedulers");
        assert_eq!(stats_l, stats_d, "scheduler-invariant statistics");
        assert!(stats_d.wavefront_levels > 0);
    }

    #[test]
    fn sweep_batch_is_lazy_and_flushes_at_depth() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let c = compile(
            &kernels::gauss_seidel_5pt_module(),
            &PipelineOptions::new(vec![4, 4], vec![2, 2]),
        )
        .unwrap();
        let w = BufferView::alloc(&[1, 12, 12]);
        w.store(&[0, 5, 5], 3.0);
        let b = BufferView::alloc(&[1, 12, 12]);
        let mut runner = Runner::new(&c.module, Engine::Bytecode, 1).unwrap();
        assert!(runner.supports_sweep_batching());
        let args = vec![RtVal::Buf(w.clone()), RtVal::Buf(b)];
        let before = w.to_vec();
        let mut batch = runner.sweep_batch("gs5", args, 3);
        assert_eq!(batch.depth(), 3);
        batch.queue().unwrap();
        batch.queue().unwrap();
        // Two queued, depth 3: nothing has executed yet.
        assert_eq!(batch.pending(), 2);
        assert_eq!(w.to_vec(), before, "queueing must not touch buffers");
        batch.queue().unwrap(); // third sweep reaches depth → auto-flush
        assert_eq!(batch.pending(), 0);
        assert_ne!(w.to_vec(), before, "flush runs the queued sweeps");
        batch.queue().unwrap();
        batch.finish().unwrap(); // remainder of 1 drains explicitly
        assert_eq!(runner.stats().reference_ops, 0);
    }

    #[test]
    fn batched_sweeps_match_eager_bitwise() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let c = compile(
            &kernels::gauss_seidel_5pt_module(),
            &PipelineOptions::new(vec![4, 4], vec![2, 2]).threads(2),
        )
        .unwrap();
        let init = || {
            let w = BufferView::alloc(&[1, 13, 13]);
            for i in 0..13i64 {
                for j in 0..13i64 {
                    w.store(&[0, i, j], ((i * 3 + j * 7) % 9) as f64 * 0.5);
                }
            }
            (w, BufferView::alloc(&[1, 13, 13]))
        };
        let sweeps = 6usize;
        let (we, be) = init();
        let mut eager = Runner::new(&c.module, Engine::Bytecode, 2).unwrap();
        for _ in 0..sweeps {
            eager
                .call("gs5", vec![RtVal::Buf(we.clone()), RtVal::Buf(be.clone())])
                .unwrap();
        }
        let (wb, bb) = init();
        let mut batched = Runner::new(&c.module, Engine::Bytecode, 2).unwrap();
        batched
            .call_sweeps("gs5", vec![RtVal::Buf(wb.clone()), RtVal::Buf(bb)], sweeps)
            .unwrap();
        assert_eq!(we.to_vec(), wb.to_vec(), "bit-identical to eager sweeps");
        assert_eq!(eager.stats(), batched.stats(), "batching-invariant stats");
    }

    #[test]
    fn run_until_converged_batches_on_bytecode() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let c = compile(
            &kernels::gauss_seidel_5pt_module(),
            &PipelineOptions::new(vec![4, 4], vec![2, 2]),
        )
        .unwrap();
        let w = BufferView::alloc(&[1, 10, 10]);
        for i in 0..10i64 {
            for j in 0..10i64 {
                if i == 0 || j == 0 || i == 9 || j == 9 {
                    w.store(&[0, i, j], 1.0);
                }
            }
        }
        let b = BufferView::alloc(&[1, 10, 10]);
        let sweeps =
            run_until_converged(&c.module, "gs5", &[w.clone(), b], 0, 1e-9, 5_000).unwrap();
        assert!(sweeps < 5_000, "must converge");
        // Convergence is checked at batch boundaries, so the count lands
        // on a multiple of the batch depth (unless capped).
        assert_eq!(sweeps % DEFAULT_SWEEP_BATCH, 0);
        assert!((w.load(&[0, 5, 5]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jacobi_swaps_buffers() {
        let m = reference_module(&kernels::jacobi_5pt_module()).unwrap();
        let x = BufferView::alloc(&[1, 5, 5]);
        x.fill(1.0);
        let b = BufferView::alloc(&[1, 5, 5]);
        let y = BufferView::alloc(&[1, 5, 5]);
        let out = run_jacobi_sweeps(&m, "jacobi5", &x, &b, &y, 1).unwrap();
        // After one sweep the result lives in `y`.
        assert!(out.aliases(&y));
        // Interior became the 5-point average of ones = 1.0; the borders
        // of y stay zero (only the interior is written).
        assert_eq!(out.load(&[0, 2, 2]), 1.0);
        assert_eq!(out.load(&[0, 0, 0]), 0.0);
    }
}
