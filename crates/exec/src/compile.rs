//! IR → bytecode translation.
//!
//! [`compile_program`] walks every function of a lowered module once and
//! emits the [`crate::bytecode`] instruction tapes the engine executes.
//! Translation is a single pre-order pass over the (single-block,
//! structured-control-flow) regions:
//!
//! * every SSA value gets one slot in a **typed register file** chosen by
//!   its static type (`f64` → scalar file, `index`/`i64`/`i1` → integer
//!   file, `vector<Nxf64>` → `N` consecutive lanes of the flat vector
//!   file, memrefs → buffer-slot table, `tensor<?xi64>` CSR schedules →
//!   array-slot table) — dominance guarantees the defining instruction
//!   runs before any use, so slots never need versioning;
//! * each region block becomes one [`crate::bytecode::Tape`]; structured
//!   control flow (`scf.for`/`scf.if`/`scf.parallel`/
//!   `scf.execute_wavefronts`) compiles to instructions holding tape
//!   indices plus explicit register [`crate::bytecode::Move`] lists for
//!   loop-carried values and branch results;
//! * attribute lookups (constants, `callee` symbols, `block_stencil`
//!   dependence decoding, `dim`/`lane` numbers) all happen **here**, so
//!   the execution loop never touches an attribute map.
//!
//! Errors split into [`BcCompileError::Unsupported`] — the module uses
//! ops outside the lowered subset (structured `cfd.stencil` reference
//! semantics, tensor-form ops), which the driver treats as "run on the
//! tree-walking interpreter instead" — and [`BcCompileError::Malformed`],
//! a genuinely broken module that neither engine could execute.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use instencil_ir::body::Block;
use instencil_ir::{Attribute, Body, Func, Module, OpCode, Operation, Type, ValueId};
use instencil_obs::Obs;
use instencil_pattern::blockdeps;

use crate::bytecode::{BcFunc, BcProgram, DimSpec, FOp, FUn, IOp, Instr, Move, RKind, Reg, Tape};
use crate::runspec;

/// Why a module could not be compiled to bytecode.
#[derive(Debug, Clone)]
pub enum BcCompileError {
    /// The module contains ops outside the lowered executable subset
    /// (e.g. structured `cfd`/`tensor` reference ops). Callers should
    /// fall back to the tree-walking interpreter.
    Unsupported(String),
    /// The module is structurally broken (bad operand classes, missing
    /// attributes); no engine could execute it.
    Malformed(String),
}

impl fmt::Display for BcCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcCompileError::Unsupported(m) => write!(f, "bytecode-unsupported op: {m}"),
            BcCompileError::Malformed(m) => write!(f, "malformed module: {m}"),
        }
    }
}

impl Error for BcCompileError {}

fn unsupported(msg: impl Into<String>) -> BcCompileError {
    BcCompileError::Unsupported(msg.into())
}

fn malformed(msg: impl Into<String>) -> BcCompileError {
    BcCompileError::Malformed(msg.into())
}

/// Bytecode compilation options.
#[derive(Clone, Copy, Debug)]
pub struct BcOptions {
    /// Attach run-specialization macro-ops (DESIGN.md §4f) to
    /// straight-line innermost loops. On by default; turning it off
    /// yields the dispatch-per-point engine, kept for differential
    /// tests and benchmarks.
    pub specialize_runs: bool,
}

impl Default for BcOptions {
    fn default() -> Self {
        BcOptions {
            specialize_runs: true,
        }
    }
}

/// Compiles every function of a module to bytecode.
///
/// Run-specialization declines (a loop that *could* have been a fused
/// macro-op but was rejected by [`runspec::analyze`]) are not errors —
/// the loop keeps the generic dispatch path — but they are exactly the
/// "bytecode ≈ dispatch, why?" cases, so each one is surfaced to `obs`
/// as a `runspec-decline` event naming the function, the loop's tape,
/// and the rejection reason.
///
/// # Errors
/// See [`BcCompileError`].
pub(crate) fn compile_program(
    module: &Module,
    opts: BcOptions,
    obs: &Obs,
) -> Result<BcProgram, BcCompileError> {
    // Callee indices resolve against module order (call targets may be
    // defined after their callers).
    let names: Vec<&str> = module.funcs().iter().map(|f| f.name.as_str()).collect();
    let funcs = module
        .funcs()
        .iter()
        .map(|f| compile_func(f, &names, opts, obs))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BcProgram { funcs })
}

/// The boundary kind of a function argument/result type.
fn rkind_of(ty: &Type) -> Result<RKind, BcCompileError> {
    Ok(match ty {
        Type::F64 | Type::F32 => RKind::F64,
        Type::I64 | Type::Index => RKind::Int,
        Type::I1 => RKind::Bool,
        Type::Vector { len, .. } => RKind::Vec(*len as u32),
        Type::MemRef { .. } => RKind::Buf,
        Type::Tensor { elem, .. } if **elem == Type::I64 => RKind::Arr,
        other => return Err(unsupported(format!("boundary type {other}"))),
    })
}

/// Per-function translation state.
struct FnCompiler<'m> {
    body: &'m Body,
    names: &'m [&'m str],
    opts: BcOptions,
    /// Register of each SSA value, assigned at its definition.
    val_reg: Vec<Option<Reg>>,
    tapes: Vec<Tape>,
    num_f: u32,
    num_i: u32,
    num_v_slots: u32,
    num_b: u32,
    num_a: u32,
    /// Loops that were eligible for run specialization but declined:
    /// `(body tape index, reason)`. "Nested control flow" declines are
    /// not recorded — every non-innermost loop of a nest declines that
    /// way by construction, so they carry no signal.
    runspec_declines: Vec<(u32, &'static str)>,
    /// Integer registers proven to hold a compile-time constant:
    /// `ConstI` destinations. Registers are allocated one per SSA value
    /// and only iter-arg/result slots are ever re-written (by `Move`s),
    /// so a `ConstI` destination has exactly one write in the whole
    /// function and dominates every read (verified SSA input). Run-spec
    /// analysis folds these like in-body literals, which lets it merge
    /// lane-unrolled accesses whose offsets route through hoisted
    /// constants.
    const_i: HashMap<u32, i64>,
}

fn compile_func(
    func: &Func,
    names: &[&str],
    opts: BcOptions,
    obs: &Obs,
) -> Result<BcFunc, BcCompileError> {
    let body = &func.body;
    let mut c = FnCompiler {
        body,
        names,
        opts,
        val_reg: vec![None; body.num_values()],
        tapes: Vec::new(),
        num_f: 0,
        num_i: 0,
        num_v_slots: 0,
        num_b: 0,
        num_a: 0,
        runspec_declines: Vec::new(),
        const_i: HashMap::new(),
    };
    let entry = c.compile_block(body.entry_block())?;
    debug_assert_eq!(entry, 0, "entry block must be tape 0");
    let entry_args = &body.block(body.entry_block()).args;
    let args = func
        .arg_types
        .iter()
        .zip(entry_args)
        .map(|(ty, &v)| Ok((rkind_of(ty)?, c.use_reg(v)?)))
        .collect::<Result<Vec<_>, BcCompileError>>()?;
    let results = func
        .result_types
        .iter()
        .map(rkind_of)
        .collect::<Result<Vec<_>, _>>()?;
    // One event per distinct declined loop per compile — a tape
    // referenced by several `For` ops (or re-visited by nest handling)
    // still names its decline once.
    let mut seen_declines = std::collections::HashSet::new();
    for (tape, reason) in &c.runspec_declines {
        if !seen_declines.insert((*tape, *reason)) {
            continue;
        }
        obs.event(
            "runspec-decline",
            &format!("{}: loop body tape {tape}: {reason}", func.name),
        );
    }
    Ok(BcFunc {
        name: func.name.clone(),
        tapes: c.tapes,
        args,
        results,
        num_f: c.num_f,
        num_i: c.num_i,
        num_v_slots: c.num_v_slots,
        num_b: c.num_b,
        num_a: c.num_a,
    })
}

impl FnCompiler<'_> {
    /// Allocates a register of the class matching `ty`.
    fn alloc_reg(&mut self, ty: &Type) -> Result<Reg, BcCompileError> {
        Ok(match ty {
            Type::F64 | Type::F32 => {
                self.num_f += 1;
                Reg::F(self.num_f - 1)
            }
            Type::I64 | Type::Index | Type::I1 => {
                self.num_i += 1;
                Reg::I(self.num_i - 1)
            }
            Type::Vector { len, .. } => {
                let off = self.num_v_slots;
                let lanes = *len as u32;
                self.num_v_slots += lanes;
                Reg::V { off, lanes }
            }
            Type::MemRef { .. } => {
                self.num_b += 1;
                Reg::B(self.num_b - 1)
            }
            Type::Tensor { elem, .. } if **elem == Type::I64 => {
                self.num_a += 1;
                Reg::A(self.num_a - 1)
            }
            other => return Err(unsupported(format!("value of type {other}"))),
        })
    }

    /// Assigns (and returns) the register of a value at its definition.
    fn def_reg(&mut self, v: ValueId) -> Result<Reg, BcCompileError> {
        let r = self.alloc_reg(&self.body.value_type(v).clone())?;
        self.val_reg[v.index()] = Some(r);
        Ok(r)
    }

    /// Register of an already-defined value (dominance guarantees the
    /// definition was compiled first).
    fn use_reg(&self, v: ValueId) -> Result<Reg, BcCompileError> {
        self.val_reg[v.index()]
            .ok_or_else(|| malformed(format!("use of value {v} before its definition")))
    }

    fn use_f(&self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.use_reg(v)? {
            Reg::F(x) => Ok(x),
            r => Err(malformed(format!("expected float register, got {r:?}"))),
        }
    }

    fn use_i(&self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.use_reg(v)? {
            Reg::I(x) => Ok(x),
            r => Err(malformed(format!("expected int register, got {r:?}"))),
        }
    }

    fn use_v(&self, v: ValueId) -> Result<(u32, u32), BcCompileError> {
        match self.use_reg(v)? {
            Reg::V { off, lanes } => Ok((off, lanes)),
            r => Err(malformed(format!("expected vector register, got {r:?}"))),
        }
    }

    fn use_b(&self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.use_reg(v)? {
            Reg::B(x) => Ok(x),
            r => Err(malformed(format!("expected buffer register, got {r:?}"))),
        }
    }

    fn use_a(&self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.use_reg(v)? {
            Reg::A(x) => Ok(x),
            r => Err(malformed(format!("expected array register, got {r:?}"))),
        }
    }

    fn def_f(&mut self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.def_reg(v)? {
            Reg::F(x) => Ok(x),
            r => Err(malformed(format!("expected float result, got {r:?}"))),
        }
    }

    fn def_i(&mut self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.def_reg(v)? {
            Reg::I(x) => Ok(x),
            r => Err(malformed(format!("expected int result, got {r:?}"))),
        }
    }

    fn def_v(&mut self, v: ValueId) -> Result<(u32, u32), BcCompileError> {
        match self.def_reg(v)? {
            Reg::V { off, lanes } => Ok((off, lanes)),
            r => Err(malformed(format!("expected vector result, got {r:?}"))),
        }
    }

    fn def_b(&mut self, v: ValueId) -> Result<u32, BcCompileError> {
        match self.def_reg(v)? {
            Reg::B(x) => Ok(x),
            r => Err(malformed(format!("expected buffer result, got {r:?}"))),
        }
    }

    fn use_i_list(&self, vals: &[ValueId]) -> Result<Box<[u32]>, BcCompileError> {
        vals.iter().map(|&v| self.use_i(v)).collect()
    }

    /// `true` when the value computes on vector lanes.
    fn is_vec(&self, v: ValueId) -> bool {
        matches!(self.body.value_type(v), Type::Vector { .. })
    }

    /// Compiles the single block of `region` into a fresh tape, returning
    /// the tape index.
    fn compile_region(&mut self, region: instencil_ir::RegionId) -> Result<u32, BcCompileError> {
        self.compile_block(self.body.region(region).blocks[0])
    }

    fn compile_block(&mut self, block: instencil_ir::BlockId) -> Result<u32, BcCompileError> {
        // Reserve the tape slot first so nested regions get later ids and
        // the entry block is always tape 0.
        let tape_idx = self.tapes.len() as u32;
        self.tapes.push(Tape::default());
        let blk: &Block = self.body.block(block);
        for &arg in &blk.args {
            self.def_reg(arg)?;
        }
        let mut code = Vec::with_capacity(blk.ops.len());
        let mut term = Vec::new();
        let ops = blk.ops.clone();
        for op_id in ops {
            let op = self.body.op(op_id);
            if op.opcode.is_terminator() {
                term = op
                    .operands
                    .iter()
                    .map(|&v| self.use_reg(v))
                    .collect::<Result<Vec<_>, _>>()?;
                break;
            }
            self.compile_op(op_id, &mut code)?;
        }
        let t = &mut self.tapes[tape_idx as usize];
        t.code = code;
        t.term = term;
        Ok(tape_idx)
    }

    /// Moves from `srcs` into the registers of newly defined `dsts`.
    fn def_moves(&mut self, srcs: &[Reg], dsts: &[ValueId]) -> Result<Box<[Move]>, BcCompileError> {
        srcs.iter()
            .zip(dsts)
            .map(|(&src, &d)| {
                Ok(Move {
                    dst: self.def_reg(d)?,
                    src,
                })
            })
            .collect()
    }

    /// Moves from `srcs` into pre-existing registers of `dsts`.
    fn use_moves(&self, srcs: &[Reg], dsts: &[ValueId]) -> Result<Box<[Move]>, BcCompileError> {
        srcs.iter()
            .zip(dsts)
            .map(|(&src, &d)| {
                Ok(Move {
                    dst: self.use_reg(d)?,
                    src,
                })
            })
            .collect()
    }

    #[allow(clippy::too_many_lines)]
    fn compile_op(
        &mut self,
        op_id: instencil_ir::OpId,
        code: &mut Vec<Instr>,
    ) -> Result<(), BcCompileError> {
        let op: &Operation = self.body.op(op_id);
        match &op.opcode {
            OpCode::Constant => {
                let value = op
                    .attrs
                    .get("value")
                    .ok_or_else(|| malformed("constant without value attr"))?
                    .clone();
                let res = op.results[0];
                let ty = self.body.value_type(res).clone();
                match (&ty, &value) {
                    (Type::F64 | Type::F32, Attribute::Float(f)) => {
                        let dst = self.def_f(res)?;
                        code.push(Instr::ConstF { dst, v: *f });
                    }
                    (Type::I64 | Type::Index, Attribute::Int(i)) => {
                        let dst = self.def_i(res)?;
                        self.const_i.insert(dst, *i);
                        code.push(Instr::ConstI { dst, v: *i });
                    }
                    (Type::I1, Attribute::Bool(b)) => {
                        let dst = self.def_i(res)?;
                        self.const_i.insert(dst, i64::from(*b));
                        code.push(Instr::ConstI {
                            dst,
                            v: i64::from(*b),
                        });
                    }
                    (Type::Vector { .. }, Attribute::Float(f)) => {
                        let (off, lanes) = self.def_v(res)?;
                        code.push(Instr::ConstV { off, lanes, v: *f });
                    }
                    _ => return Err(malformed("bad constant")),
                }
            }
            OpCode::AddF
            | OpCode::SubF
            | OpCode::MulF
            | OpCode::DivF
            | OpCode::MaxF
            | OpCode::MinF
            | OpCode::PowF => {
                let fop = match op.opcode {
                    OpCode::AddF => FOp::Add,
                    OpCode::SubF => FOp::Sub,
                    OpCode::MulF => FOp::Mul,
                    OpCode::DivF => FOp::Div,
                    OpCode::MaxF => FOp::Max,
                    OpCode::MinF => FOp::Min,
                    OpCode::PowF => FOp::Pow,
                    _ => unreachable!(),
                };
                let res = op.results[0];
                if self.is_vec(res) {
                    let (a, al) = self.use_v(op.operands[0])?;
                    let (b, bl) = self.use_v(op.operands[1])?;
                    let (dst, lanes) = self.def_v(res)?;
                    if al != lanes || bl != lanes {
                        return Err(malformed("vector lane mismatch in float binop"));
                    }
                    code.push(Instr::BinV {
                        op: fop,
                        dst,
                        a,
                        b,
                        lanes,
                    });
                } else {
                    let a = self.use_f(op.operands[0])?;
                    let b = self.use_f(op.operands[1])?;
                    let dst = self.def_f(res)?;
                    code.push(Instr::BinF { op: fop, dst, a, b });
                }
            }
            OpCode::NegF | OpCode::Sqrt | OpCode::AbsF | OpCode::Exp => {
                let fun = match op.opcode {
                    OpCode::NegF => FUn::Neg,
                    OpCode::Sqrt => FUn::Sqrt,
                    OpCode::AbsF => FUn::Abs,
                    OpCode::Exp => FUn::Exp,
                    _ => unreachable!(),
                };
                let res = op.results[0];
                if self.is_vec(res) {
                    let (a, _) = self.use_v(op.operands[0])?;
                    let (dst, lanes) = self.def_v(res)?;
                    code.push(Instr::UnV {
                        op: fun,
                        dst,
                        a,
                        lanes,
                    });
                } else {
                    let a = self.use_f(op.operands[0])?;
                    let dst = self.def_f(res)?;
                    code.push(Instr::UnF { op: fun, dst, a });
                }
            }
            OpCode::Fma => {
                let res = op.results[0];
                if self.is_vec(res) {
                    let (a, _) = self.use_v(op.operands[0])?;
                    let (b, _) = self.use_v(op.operands[1])?;
                    let (c, _) = self.use_v(op.operands[2])?;
                    let (dst, lanes) = self.def_v(res)?;
                    code.push(Instr::FmaV {
                        dst,
                        a,
                        b,
                        c,
                        lanes,
                    });
                } else {
                    let a = self.use_f(op.operands[0])?;
                    let b = self.use_f(op.operands[1])?;
                    let c = self.use_f(op.operands[2])?;
                    let dst = self.def_f(res)?;
                    code.push(Instr::FmaF { dst, a, b, c });
                }
            }
            OpCode::AddI
            | OpCode::SubI
            | OpCode::MulI
            | OpCode::FloorDivSI
            | OpCode::CeilDivSI
            | OpCode::RemSI
            | OpCode::MinSI
            | OpCode::MaxSI => {
                let iop = match op.opcode {
                    OpCode::AddI => IOp::Add,
                    OpCode::SubI => IOp::Sub,
                    OpCode::MulI => IOp::Mul,
                    OpCode::FloorDivSI => IOp::FloorDiv,
                    OpCode::CeilDivSI => IOp::CeilDiv,
                    OpCode::RemSI => IOp::Rem,
                    OpCode::MinSI => IOp::Min,
                    OpCode::MaxSI => IOp::Max,
                    _ => unreachable!(),
                };
                let a = self.use_i(op.operands[0])?;
                let b = self.use_i(op.operands[1])?;
                let dst = self.def_i(op.results[0])?;
                code.push(Instr::BinI { op: iop, dst, a, b });
            }
            OpCode::CmpI(pred) => {
                let pred = *pred;
                let a = self.use_i(op.operands[0])?;
                let b = self.use_i(op.operands[1])?;
                let dst = self.def_i(op.results[0])?;
                code.push(Instr::CmpI { pred, dst, a, b });
            }
            OpCode::CmpF(pred) => {
                let pred = *pred;
                let a = self.use_f(op.operands[0])?;
                let b = self.use_f(op.operands[1])?;
                let dst = self.def_i(op.results[0])?;
                code.push(Instr::CmpF { pred, dst, a, b });
            }
            OpCode::Select => {
                let cond = self.use_i(op.operands[0])?;
                let res = op.results[0];
                match self.body.value_type(res).clone() {
                    Type::F64 | Type::F32 => {
                        let t = self.use_f(op.operands[1])?;
                        let e = self.use_f(op.operands[2])?;
                        let dst = self.def_f(res)?;
                        code.push(Instr::SelF { dst, cond, t, e });
                    }
                    Type::I64 | Type::Index | Type::I1 => {
                        let t = self.use_i(op.operands[1])?;
                        let e = self.use_i(op.operands[2])?;
                        let dst = self.def_i(res)?;
                        code.push(Instr::SelI { dst, cond, t, e });
                    }
                    Type::Vector { .. } => {
                        let (t, _) = self.use_v(op.operands[1])?;
                        let (e, _) = self.use_v(op.operands[2])?;
                        let (dst, lanes) = self.def_v(res)?;
                        code.push(Instr::SelV {
                            dst,
                            cond,
                            t,
                            e,
                            lanes,
                        });
                    }
                    other => return Err(unsupported(format!("select on {other}"))),
                }
            }
            OpCode::IndexCast => {
                let src = self.use_i(op.operands[0])?;
                let dst = self.def_i(op.results[0])?;
                code.push(Instr::MoveI { dst, src });
            }
            OpCode::SiToFp => {
                let src = self.use_i(op.operands[0])?;
                let dst = self.def_f(op.results[0])?;
                code.push(Instr::SiToFp { dst, src });
            }
            OpCode::For => {
                let lb = self.use_i(op.operands[0])?;
                let ub = self.use_i(op.operands[1])?;
                let step = self.use_i(op.operands[2])?;
                let init_regs = op.operands[3..]
                    .iter()
                    .map(|&v| self.use_reg(v))
                    .collect::<Result<Vec<_>, _>>()?;
                let region = op.regions[0];
                let results = op.results.clone();
                let body_tape = self.compile_region(region)?;
                let blk_args = self.body.block(self.body.region(region).blocks[0]).args.clone();
                let iv = match self.use_reg(blk_args[0])? {
                    Reg::I(x) => x,
                    r => return Err(malformed(format!("loop iv register {r:?}"))),
                };
                let iter_args = &blk_args[1..];
                // Init operands → iter-arg slots before the first
                // iteration; yielded registers → iter-arg slots after each
                // iteration; iter-arg slots → result registers at exit.
                let inits = self.use_moves(&init_regs, iter_args)?;
                let yielded = self.tapes[body_tape as usize].term.clone();
                let loopback = self.use_moves(&yielded, iter_args)?;
                let iter_regs = iter_args
                    .iter()
                    .map(|&v| self.use_reg(v))
                    .collect::<Result<Vec<_>, _>>()?;
                let res_moves = self.def_moves(&iter_regs, &results)?;
                // Run specialization (DESIGN.md §4f): loops without
                // iter args whose body is a straight-line stencil point
                // get a macro-op; everything else keeps the generic
                // path.
                let run = if self.opts.specialize_runs
                    && inits.is_empty()
                    && loopback.is_empty()
                    && res_moves.is_empty()
                {
                    match runspec::analyze(&self.tapes[body_tape as usize], iv, &self.const_i) {
                        Ok(spec) => Some(Box::new(spec)),
                        Err(reason) => {
                            if reason != "nested control flow" {
                                self.runspec_declines.push((body_tape, reason));
                            }
                            None
                        }
                    }
                } else if self.opts.specialize_runs {
                    self.runspec_declines
                        .push((body_tape, "loop-carried iter args"));
                    None
                } else {
                    None
                };
                code.push(Instr::For {
                    lb,
                    ub,
                    step,
                    iv,
                    body: body_tape,
                    inits,
                    loopback,
                    results: res_moves,
                    run,
                });
            }
            OpCode::If => {
                let cond = self.use_i(op.operands[0])?;
                if op.regions.len() != 2 {
                    return Err(malformed("scf.if must have then and else regions"));
                }
                let results = op.results.clone();
                let then_body = self.compile_region(op.regions[0])?;
                let else_body = self.compile_region(op.regions[1])?;
                let then_yield = self.tapes[then_body as usize].term.clone();
                let else_yield = self.tapes[else_body as usize].term.clone();
                // Result registers are defined once; both branches move
                // their yields into the same slots.
                let res_regs = results
                    .iter()
                    .map(|&r| self.def_reg(r))
                    .collect::<Result<Vec<_>, _>>()?;
                let pair = |srcs: &[Reg]| -> Box<[Move]> {
                    srcs.iter()
                        .zip(&res_regs)
                        .map(|(&src, &dst)| Move { dst, src })
                        .collect()
                };
                code.push(Instr::If {
                    cond,
                    then_body,
                    else_body,
                    then_res: pair(&then_yield),
                    else_res: pair(&else_yield),
                });
            }
            OpCode::Parallel => {
                let lb = self.use_i(op.operands[0])?;
                let ub = self.use_i(op.operands[1])?;
                let step = self.use_i(op.operands[2])?;
                let region = op.regions[0];
                let body_tape = self.compile_region(region)?;
                let arg = self.body.block(self.body.region(region).blocks[0]).args[0];
                let iv = match self.use_reg(arg)? {
                    Reg::I(x) => x,
                    r => return Err(malformed(format!("parallel iv register {r:?}"))),
                };
                code.push(Instr::ParallelLoop {
                    lb,
                    ub,
                    step,
                    iv,
                    body: body_tape,
                });
            }
            OpCode::ExecuteWavefronts => {
                let rows = self.use_a(op.operands[0])?;
                let cols = self.use_a(op.operands[1])?;
                let region = op.regions[0];
                let body_tape = self.compile_region(region)?;
                let arg = self.body.block(self.body.region(region).blocks[0]).args[0];
                let block = match self.use_reg(arg)? {
                    Reg::I(x) => x,
                    r => return Err(malformed(format!("wavefront block register {r:?}"))),
                };
                code.push(Instr::Wavefronts {
                    rows,
                    cols,
                    block,
                    body: body_tape,
                });
            }
            OpCode::CfdGetParallelBlocks => {
                let dims = self.use_i_list(&op.operands)?;
                let (shape, data) = op
                    .attrs
                    .get("block_stencil")
                    .and_then(Attribute::as_dense_i8)
                    .ok_or_else(|| malformed("get_parallel_blocks without block_stencil"))?;
                let deps: Box<[Vec<i64>]> = blockdeps::from_block_stencil(shape, data).into();
                let results = op.results.clone();
                let rows = match self.def_reg(results[0])? {
                    Reg::A(x) => x,
                    r => return Err(malformed(format!("CSR rows register {r:?}"))),
                };
                let cols = match self.def_reg(results[1])? {
                    Reg::A(x) => x,
                    r => return Err(malformed(format!("CSR cols register {r:?}"))),
                };
                code.push(Instr::GetParallelBlocks {
                    dims,
                    deps,
                    rows,
                    cols,
                });
            }
            OpCode::Call => {
                let callee = op
                    .attrs
                    .get("callee")
                    .and_then(Attribute::as_str)
                    .ok_or_else(|| malformed("call without callee"))?;
                let func = self
                    .names
                    .iter()
                    .position(|n| *n == callee)
                    .ok_or_else(|| malformed(format!("call to unknown function `{callee}`")))?
                    as u32;
                let args = op
                    .operands
                    .iter()
                    .map(|&v| self.use_reg(v))
                    .collect::<Result<Box<[_]>, _>>()?;
                let results = op
                    .results
                    .clone()
                    .iter()
                    .map(|&r| self.def_reg(r))
                    .collect::<Result<Box<[_]>, _>>()?;
                code.push(Instr::Call {
                    func,
                    args,
                    results,
                });
            }
            OpCode::MemAlloc => {
                let res = op.results[0];
                let static_shape = self
                    .body
                    .value_type(res)
                    .shape()
                    .ok_or_else(|| malformed("alloc result must be shaped"))?
                    .to_vec();
                let mut dyn_iter = op.operands.clone().into_iter();
                let mut dims = Vec::with_capacity(static_shape.len());
                for d in static_shape {
                    match d {
                        Some(n) => dims.push(DimSpec::Static(n)),
                        None => {
                            let v = dyn_iter
                                .next()
                                .ok_or_else(|| malformed("alloc missing dynamic size"))?;
                            dims.push(DimSpec::Dyn(self.use_i(v)?));
                        }
                    }
                }
                let dst = self.def_b(res)?;
                code.push(Instr::Alloc {
                    dst,
                    dims: dims.into(),
                });
            }
            OpCode::MemDealloc => {}
            OpCode::MemDim => {
                let buf = self.use_b(op.operands[0])?;
                let dim = op.int_attr("dim").unwrap_or(0) as u32;
                let dst = self.def_i(op.results[0])?;
                code.push(Instr::Dim { dst, buf, dim });
            }
            OpCode::MemLoad => {
                let buf = self.use_b(op.operands[0])?;
                let idx = self.use_i_list(&op.operands[1..])?;
                let dst = self.def_f(op.results[0])?;
                code.push(Instr::Load { dst, buf, idx });
            }
            OpCode::MemStore => {
                let src = self.use_f(op.operands[0])?;
                let buf = self.use_b(op.operands[1])?;
                let idx = self.use_i_list(&op.operands[2..])?;
                code.push(Instr::Store { src, buf, idx });
            }
            OpCode::MemSubview => {
                let src = self.use_b(op.operands[0])?;
                let rank = self
                    .body
                    .value_type(op.operands[0])
                    .rank()
                    .ok_or_else(|| malformed("subview of non-shaped value"))?;
                let offs = self.use_i_list(&op.operands[1..1 + rank])?;
                let sizes = self.use_i_list(&op.operands[1 + rank..])?;
                let dst = self.def_b(op.results[0])?;
                code.push(Instr::Subview {
                    dst,
                    src,
                    offs,
                    sizes,
                });
            }
            OpCode::MemShiftView => {
                let src = self.use_b(op.operands[0])?;
                let shifts = self.use_i_list(&op.operands[1..])?;
                let dst = self.def_b(op.results[0])?;
                code.push(Instr::ShiftView { dst, src, shifts });
            }
            OpCode::MemCopy => {
                let src = self.use_b(op.operands[0])?;
                let dst = self.use_b(op.operands[1])?;
                code.push(Instr::CopyBuf { src, dst });
            }
            OpCode::VecTransferRead => {
                let buf = self.use_b(op.operands[0])?;
                let idx = self.use_i_list(&op.operands[1..])?;
                let (dst, lanes) = self.def_v(op.results[0])?;
                code.push(Instr::VLoad {
                    dst,
                    lanes,
                    buf,
                    idx,
                });
            }
            OpCode::VecTransferWrite => {
                let (src, lanes) = self.use_v(op.operands[0])?;
                let buf = self.use_b(op.operands[1])?;
                let idx = self.use_i_list(&op.operands[2..])?;
                code.push(Instr::VStore {
                    src,
                    lanes,
                    buf,
                    idx,
                });
            }
            OpCode::VecExtract => {
                let (src, lanes) = self.use_v(op.operands[0])?;
                let lane = op.int_attr("lane").unwrap_or(0) as u32;
                if lane >= lanes {
                    return Err(malformed("vector.extract lane out of range"));
                }
                let dst = self.def_f(op.results[0])?;
                code.push(Instr::VExtract { dst, src, lane });
            }
            OpCode::VecBroadcast => {
                let src = self.use_f(op.operands[0])?;
                let (dst, lanes) = self.def_v(op.results[0])?;
                code.push(Instr::VBroadcast { dst, lanes, src });
            }
            other => {
                // Structured cfd/tensor reference ops (and anything else
                // outside the lowered subset) stay on the interpreter.
                return Err(unsupported(other.name()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::BytecodeEngine;
    use instencil_core::kernels;
    use instencil_core::pipeline::reference_module;

    #[test]
    fn reference_modules_are_unsupported_not_malformed() {
        let m = reference_module(&kernels::gauss_seidel_5pt_module()).unwrap();
        match BytecodeEngine::compile(&m) {
            Err(BcCompileError::Unsupported(msg)) => {
                assert!(msg.contains("cfd"), "should name the structured op: {msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn lowered_modules_compile() {
        use instencil_core::pipeline::{compile, PipelineOptions};
        let m = kernels::gauss_seidel_5pt_module();
        for opts in [
            PipelineOptions::new(vec![4, 4], vec![2, 2]),
            PipelineOptions::new(vec![4, 4], vec![2, 2]).vectorize(Some(4)),
            PipelineOptions::new(vec![4, 4], vec![2, 2])
                .fuse(true)
                .vectorize(Some(4)),
        ] {
            let compiled = compile(&m, &opts).unwrap();
            BytecodeEngine::compile(&compiled.module).expect("lowered module compiles");
        }
    }
}
