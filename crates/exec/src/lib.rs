//! `instencil-exec` — execution engine for compiled stencil modules.
//!
//! Provides:
//!
//! * [`buffer::BufferView`] — n-d `f64` buffers with aliasing subviews and
//!   the shifted views used by fused per-tile temporaries;
//! * [`interp::Interpreter`] — an IR interpreter that executes both the
//!   *reference* (structured `cfd` ops, the semantic oracle) and the
//!   *lowered* (loops + vectors + wavefronts) forms of a module, while
//!   collecting dynamic [`stats::ExecStats`];
//! * [`bytecode::BytecodeEngine`] — compiles lowered modules once into
//!   flat register-machine tapes and executes them with no per-point
//!   allocation; bit-identical results and statistics to the
//!   interpreter, several times faster (the default engine for
//!   wall-clock measurements);
//! * [`parallel::WavefrontPool`] — genuinely multithreaded wavefront
//!   execution over CSR schedules (std scoped threads);
//! * [`driver`] — sweep-loop helpers for in-place and out-of-place
//!   kernels.
//!
//! # Example: run the compiled 5-point Gauss-Seidel
//!
//! ```
//! use instencil_core::{kernels, pipeline::{compile, PipelineOptions}};
//! use instencil_exec::{buffer::BufferView, driver::run_sweeps};
//!
//! let module = kernels::gauss_seidel_5pt_module();
//! let compiled = compile(
//!     &module,
//!     &PipelineOptions::new(vec![8, 8], vec![4, 4]).vectorize(Some(4)),
//! ).unwrap();
//! let w = BufferView::alloc(&[1, 16, 16]);
//! w.fill(1.0);
//! let b = BufferView::alloc(&[1, 16, 16]);
//! run_sweeps(&compiled.module, "gs5", &[w.clone(), b], 3).unwrap();
//! assert_eq!(w.load(&[0, 8, 8]), 1.0); // fixed point of averaging ones
//! ```

pub mod buffer;
pub mod bytecode;
pub mod compile;
pub mod driver;
pub mod interp;
pub mod parallel;
pub(crate) mod runspec;
pub use runspec::phase_timing;
pub mod stats;
pub mod value;

pub use buffer::BufferView;
pub use bytecode::BytecodeEngine;
pub use compile::{BcCompileError, BcOptions};
pub use driver::Runner;
pub use interp::{ExecError, Interpreter};
pub use parallel::WavefrontPool;
pub use stats::ExecStats;
pub use value::RtVal;
