//! Execution statistics collected by the interpreter.
//!
//! These counters serve two purposes: (i) white-box assertions in tests
//! (e.g. "the vectorized pipeline executes ~N/VF vector chunk bodies"),
//! and (ii) calibration inputs for the machine performance model. For
//! run reports they render as text ([`std::fmt::Display`]) or JSON
//! ([`ExecStats::to_json`]) with a few derived ratios.

use std::fmt;

use instencil_obs::Json;

/// Default vector width assumed by the derived report ratios (matches
/// the pipeline's `vf8` vectorization factor).
const REPORT_VF: u64 = 8;

/// Dynamic operation counts of one interpreted execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scalar floating-point operations executed.
    pub scalar_flops: u64,
    /// Vector floating-point operations executed (each counts once,
    /// regardless of width).
    pub vector_flops: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Vector transfer reads.
    pub vector_loads: u64,
    /// Vector transfer writes.
    pub vector_stores: u64,
    /// Wavefront levels executed (each is a synchronization barrier).
    pub wavefront_levels: u64,
    /// Sub-domain bodies executed inside wavefronts.
    pub blocks_executed: u64,
    /// `cfd.get_parallel_blocks` schedule computations.
    pub schedules_computed: u64,
    /// Structured ops executed by reference semantics (not lowered).
    pub reference_ops: u64,
    /// Integer/index operations (loop and addressing overhead).
    pub index_ops: u64,
}

impl ExecStats {
    /// Adds another stats record into this one.
    ///
    /// Worker threads each accumulate a private `ExecStats` that the
    /// wavefront coordinator merges, so every field must participate:
    /// the exhaustive destructure makes adding a field without summing
    /// it here a compile error rather than a silent under-count.
    pub fn merge(&mut self, other: &ExecStats) {
        let ExecStats {
            scalar_flops,
            vector_flops,
            loads,
            stores,
            vector_loads,
            vector_stores,
            wavefront_levels,
            blocks_executed,
            schedules_computed,
            reference_ops,
            index_ops,
        } = *other;
        self.scalar_flops += scalar_flops;
        self.vector_flops += vector_flops;
        self.loads += loads;
        self.stores += stores;
        self.vector_loads += vector_loads;
        self.vector_stores += vector_stores;
        self.wavefront_levels += wavefront_levels;
        self.blocks_executed += blocks_executed;
        self.schedules_computed += schedules_computed;
        self.reference_ops += reference_ops;
        self.index_ops += index_ops;
    }

    /// Total dynamic floating-point work assuming `vf` lanes per vector
    /// op.
    pub fn effective_flops(&self, vf: u64) -> u64 {
        self.scalar_flops + self.vector_flops * vf
    }

    /// Total buffer traffic in `f64` elements, assuming `vf` lanes per
    /// vector transfer.
    pub fn effective_traffic(&self, vf: u64) -> u64 {
        self.loads + self.stores + (self.vector_loads + self.vector_stores) * vf
    }

    /// Mean wavefront-level width in blocks (0.0 when no level ran).
    pub fn mean_blocks_per_level(&self) -> f64 {
        if self.wavefront_levels == 0 {
            0.0
        } else {
            self.blocks_executed as f64 / self.wavefront_levels as f64
        }
    }

    /// Serializes every counter plus derived ratios (assuming
    /// [`REPORT_VF`]-lane vectors) for the `exec_stats` section of a
    /// run report.
    pub fn to_json(&self) -> Json {
        // Exhaustive destructure: adding a counter without reporting it
        // is a compile error, mirroring the `merge` guard.
        let ExecStats {
            scalar_flops,
            vector_flops,
            loads,
            stores,
            vector_loads,
            vector_stores,
            wavefront_levels,
            blocks_executed,
            schedules_computed,
            reference_ops,
            index_ops,
        } = *self;
        let flops = self.effective_flops(REPORT_VF);
        let traffic = self.effective_traffic(REPORT_VF);
        Json::Obj(vec![
            ("scalar_flops".into(), Json::num(scalar_flops as f64)),
            ("vector_flops".into(), Json::num(vector_flops as f64)),
            ("loads".into(), Json::num(loads as f64)),
            ("stores".into(), Json::num(stores as f64)),
            ("vector_loads".into(), Json::num(vector_loads as f64)),
            ("vector_stores".into(), Json::num(vector_stores as f64)),
            (
                "wavefront_levels".into(),
                Json::num(wavefront_levels as f64),
            ),
            ("blocks_executed".into(), Json::num(blocks_executed as f64)),
            (
                "schedules_computed".into(),
                Json::num(schedules_computed as f64),
            ),
            ("reference_ops".into(), Json::num(reference_ops as f64)),
            ("index_ops".into(), Json::num(index_ops as f64)),
            (
                "effective_flops_vf8".into(),
                Json::num(flops as f64),
            ),
            (
                "effective_traffic_vf8".into(),
                Json::num(traffic as f64),
            ),
            (
                "flops_per_element_vf8".into(),
                Json::Num(if traffic == 0 {
                    0.0
                } else {
                    flops as f64 / traffic as f64
                }),
            ),
            (
                "mean_blocks_per_level".into(),
                Json::Num(self.mean_blocks_per_level()),
            ),
        ])
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flops: {} scalar + {} vector (= {} @ vf{REPORT_VF})",
            self.scalar_flops,
            self.vector_flops,
            self.effective_flops(REPORT_VF)
        )?;
        writeln!(
            f,
            "traffic: {} loads + {} stores, {} vloads + {} vstores (= {} elems @ vf{REPORT_VF})",
            self.loads,
            self.stores,
            self.vector_loads,
            self.vector_stores,
            self.effective_traffic(REPORT_VF)
        )?;
        writeln!(
            f,
            "wavefronts: {} levels, {} blocks ({:.1} blocks/level), {} schedules",
            self.wavefront_levels,
            self.blocks_executed,
            self.mean_blocks_per_level(),
            self.schedules_computed
        )?;
        write!(
            f,
            "other: {} reference ops, {} index ops",
            self.reference_ops, self.index_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            scalar_flops: 2,
            loads: 1,
            ..Default::default()
        };
        let b = ExecStats {
            scalar_flops: 3,
            stores: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scalar_flops, 5);
        assert_eq!(a.loads, 1);
        assert_eq!(a.stores, 4);
    }

    #[test]
    fn merge_covers_every_field() {
        // Guard against field drift: fill every field with a distinct
        // value and check that merging into zero reproduces it exactly.
        // A field missing from `merge` would come back as 0 here.
        let full = ExecStats {
            scalar_flops: 1,
            vector_flops: 2,
            loads: 3,
            stores: 4,
            vector_loads: 5,
            vector_stores: 6,
            wavefront_levels: 7,
            blocks_executed: 8,
            schedules_computed: 9,
            reference_ops: 10,
            index_ops: 11,
        };
        let mut acc = ExecStats::default();
        acc.merge(&full);
        assert_eq!(acc, full);
        acc.merge(&full);
        let double = ExecStats {
            scalar_flops: 2,
            vector_flops: 4,
            loads: 6,
            stores: 8,
            vector_loads: 10,
            vector_stores: 12,
            wavefront_levels: 14,
            blocks_executed: 16,
            schedules_computed: 18,
            reference_ops: 20,
            index_ops: 22,
        };
        assert_eq!(acc, double);
    }

    #[test]
    fn effective_flops_scales_vectors() {
        let s = ExecStats {
            scalar_flops: 10,
            vector_flops: 3,
            ..Default::default()
        };
        assert_eq!(s.effective_flops(8), 34);
    }

    #[test]
    fn json_covers_every_field_plus_derived_ratios() {
        let full = ExecStats {
            scalar_flops: 1,
            vector_flops: 2,
            loads: 3,
            stores: 4,
            vector_loads: 5,
            vector_stores: 6,
            wavefront_levels: 7,
            blocks_executed: 8,
            schedules_computed: 9,
            reference_ops: 10,
            index_ops: 11,
        };
        let json = full.to_json();
        for key in [
            "scalar_flops",
            "vector_flops",
            "loads",
            "stores",
            "vector_loads",
            "vector_stores",
            "wavefront_levels",
            "blocks_executed",
            "schedules_computed",
            "reference_ops",
            "index_ops",
        ] {
            assert!(json.get(key).is_some(), "missing counter `{key}`");
        }
        assert_eq!(
            json.get("effective_flops_vf8").unwrap().as_f64(),
            Some(17.0) // 1 + 2*8
        );
        assert_eq!(
            json.get("effective_traffic_vf8").unwrap().as_f64(),
            Some(95.0) // 3 + 4 + (5+6)*8
        );
        assert_eq!(
            json.get("mean_blocks_per_level").unwrap().as_f64(),
            Some(8.0 / 7.0)
        );
        // The document round-trips through the in-tree parser.
        let text = json.to_string();
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn display_renders_counters_and_handles_empty() {
        let s = ExecStats {
            scalar_flops: 12,
            loads: 3,
            wavefront_levels: 2,
            blocks_executed: 6,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("12 scalar"));
        assert!(text.contains("3.0 blocks/level"));
        // Zero stats must not divide by zero anywhere.
        let empty = ExecStats::default().to_string();
        assert!(empty.contains("0.0 blocks/level"));
        assert_eq!(ExecStats::default().mean_blocks_per_level(), 0.0);
    }
}
