//! Execution statistics collected by the interpreter.
//!
//! These counters serve two purposes: (i) white-box assertions in tests
//! (e.g. "the vectorized pipeline executes ~N/VF vector chunk bodies"),
//! and (ii) calibration inputs for the machine performance model.

/// Dynamic operation counts of one interpreted execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scalar floating-point operations executed.
    pub scalar_flops: u64,
    /// Vector floating-point operations executed (each counts once,
    /// regardless of width).
    pub vector_flops: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Vector transfer reads.
    pub vector_loads: u64,
    /// Vector transfer writes.
    pub vector_stores: u64,
    /// Wavefront levels executed (each is a synchronization barrier).
    pub wavefront_levels: u64,
    /// Sub-domain bodies executed inside wavefronts.
    pub blocks_executed: u64,
    /// `cfd.get_parallel_blocks` schedule computations.
    pub schedules_computed: u64,
    /// Structured ops executed by reference semantics (not lowered).
    pub reference_ops: u64,
    /// Integer/index operations (loop and addressing overhead).
    pub index_ops: u64,
}

impl ExecStats {
    /// Adds another stats record into this one.
    ///
    /// Worker threads each accumulate a private `ExecStats` that the
    /// wavefront coordinator merges, so every field must participate:
    /// the exhaustive destructure makes adding a field without summing
    /// it here a compile error rather than a silent under-count.
    pub fn merge(&mut self, other: &ExecStats) {
        let ExecStats {
            scalar_flops,
            vector_flops,
            loads,
            stores,
            vector_loads,
            vector_stores,
            wavefront_levels,
            blocks_executed,
            schedules_computed,
            reference_ops,
            index_ops,
        } = *other;
        self.scalar_flops += scalar_flops;
        self.vector_flops += vector_flops;
        self.loads += loads;
        self.stores += stores;
        self.vector_loads += vector_loads;
        self.vector_stores += vector_stores;
        self.wavefront_levels += wavefront_levels;
        self.blocks_executed += blocks_executed;
        self.schedules_computed += schedules_computed;
        self.reference_ops += reference_ops;
        self.index_ops += index_ops;
    }

    /// Total dynamic floating-point work assuming `vf` lanes per vector
    /// op.
    pub fn effective_flops(&self, vf: u64) -> u64 {
        self.scalar_flops + self.vector_flops * vf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            scalar_flops: 2,
            loads: 1,
            ..Default::default()
        };
        let b = ExecStats {
            scalar_flops: 3,
            stores: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scalar_flops, 5);
        assert_eq!(a.loads, 1);
        assert_eq!(a.stores, 4);
    }

    #[test]
    fn merge_covers_every_field() {
        // Guard against field drift: fill every field with a distinct
        // value and check that merging into zero reproduces it exactly.
        // A field missing from `merge` would come back as 0 here.
        let full = ExecStats {
            scalar_flops: 1,
            vector_flops: 2,
            loads: 3,
            stores: 4,
            vector_loads: 5,
            vector_stores: 6,
            wavefront_levels: 7,
            blocks_executed: 8,
            schedules_computed: 9,
            reference_ops: 10,
            index_ops: 11,
        };
        let mut acc = ExecStats::default();
        acc.merge(&full);
        assert_eq!(acc, full);
        acc.merge(&full);
        let double = ExecStats {
            scalar_flops: 2,
            vector_flops: 4,
            loads: 6,
            stores: 8,
            vector_loads: 10,
            vector_stores: 12,
            wavefront_levels: 14,
            blocks_executed: 16,
            schedules_computed: 18,
            reference_ops: 20,
            index_ops: 22,
        };
        assert_eq!(acc, double);
    }

    #[test]
    fn effective_flops_scales_vectors() {
        let s = ExecStats {
            scalar_flops: 10,
            vector_flops: 3,
            ..Default::default()
        };
        assert_eq!(s.effective_flops(8), 34);
    }
}
