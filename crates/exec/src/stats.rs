//! Execution statistics collected by the interpreter.
//!
//! These counters serve two purposes: (i) white-box assertions in tests
//! (e.g. "the vectorized pipeline executes ~N/VF vector chunk bodies"),
//! and (ii) calibration inputs for the machine performance model.

/// Dynamic operation counts of one interpreted execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scalar floating-point operations executed.
    pub scalar_flops: u64,
    /// Vector floating-point operations executed (each counts once,
    /// regardless of width).
    pub vector_flops: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Vector transfer reads.
    pub vector_loads: u64,
    /// Vector transfer writes.
    pub vector_stores: u64,
    /// Wavefront levels executed (each is a synchronization barrier).
    pub wavefront_levels: u64,
    /// Sub-domain bodies executed inside wavefronts.
    pub blocks_executed: u64,
    /// `cfd.get_parallel_blocks` schedule computations.
    pub schedules_computed: u64,
    /// Structured ops executed by reference semantics (not lowered).
    pub reference_ops: u64,
    /// Integer/index operations (loop and addressing overhead).
    pub index_ops: u64,
}

impl ExecStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.scalar_flops += other.scalar_flops;
        self.vector_flops += other.vector_flops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.vector_loads += other.vector_loads;
        self.vector_stores += other.vector_stores;
        self.wavefront_levels += other.wavefront_levels;
        self.blocks_executed += other.blocks_executed;
        self.schedules_computed += other.schedules_computed;
        self.reference_ops += other.reference_ops;
        self.index_ops += other.index_ops;
    }

    /// Total dynamic floating-point work assuming `vf` lanes per vector
    /// op.
    pub fn effective_flops(&self, vf: u64) -> u64 {
        self.scalar_flops + self.vector_flops * vf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            scalar_flops: 2,
            loads: 1,
            ..Default::default()
        };
        let b = ExecStats {
            scalar_flops: 3,
            stores: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.scalar_flops, 5);
        assert_eq!(a.loads, 1);
        assert_eq!(a.stores, 4);
    }

    #[test]
    fn effective_flops_scales_vectors() {
        let s = ExecStats {
            scalar_flops: 10,
            vector_flops: 3,
            ..Default::default()
        };
        assert_eq!(s.effective_flops(8), 34);
    }
}
