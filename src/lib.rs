//! # instencil — code generation for in-place stencils
//!
//! A Rust reproduction of the CGO'23 paper *Code Generation for In-Place
//! Stencils* (Essadki, Michel, Maugars, Zinenko, Vasilache, Cohen): a
//! domain-specific code generator for iterative **in-place** stencils
//! (Gauss-Seidel, SOR, LU-SGS) built on an MLIR-like tensor-compiler
//! substrate.
//!
//! The workspace splits into layers, re-exported here:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | [`ir`] | `instencil-ir` | MLIR-like SSA IR, dialects, verifier, printer/parser, passes |
//! | [`pattern`] | `instencil-pattern` | stencil patterns, L/U sets, tiling legality, Eq. (3) wavefronts |
//! | [`core`] | `instencil-core` | the `cfd` dialect, kernels, tiling/fusion/parallelization/vectorization |
//! | [`exec`] | `instencil-exec` | buffers, interpreter (reference + lowered), bytecode engine, thread-pool wavefronts |
//! | [`machine`] | `instencil-machine` | Xeon 6152 model, roofline + wavefront estimator, autotuner |
//! | [`solvers`] | `instencil-solvers` | reference numerics: GS/SOR/Jacobi, heat 3D, Euler/Roe, LU-SGS |
//! | [`baseline`] | `instencil-baseline` | Pluto-like and elsA-like comparison systems |
//!
//! # Quickstart
//!
//! ```
//! use instencil::prelude::*;
//!
//! // 1. Pick a kernel (the paper's 5-point Gauss-Seidel).
//! let module = kernels::gauss_seidel_5pt_module();
//!
//! // 2. Compile: tiling + wavefront parallelism + partial vectorization.
//! let opts = PipelineOptions::new(vec![8, 8], vec![4, 4]).vectorize(Some(4));
//! let compiled = compile(&module, &opts)?;
//!
//! // 3. Execute on buffers (the same buffer serves X and Y: in place).
//! let w = BufferView::alloc(&[1, 20, 20]);
//! w.store(&[0, 10, 10], 1.0);
//! let b = BufferView::alloc(&[1, 20, 20]);
//! run_sweeps(&compiled.module, "gs5", &[w.clone(), b], 10)?;
//! assert!(w.load(&[0, 15, 15]) != 0.0); // in-place propagation
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use instencil_baseline as baseline;
pub use instencil_core as core;
pub use instencil_exec as exec;
pub use instencil_ir as ir;
pub use instencil_machine as machine;
pub use instencil_obs as obs;
pub use instencil_pattern as pattern;
pub use instencil_solvers as solvers;

/// The most common imports in one place.
pub mod prelude {
    pub use instencil_core::kernels;
    pub use instencil_core::ops::{
        build_face_iterator, build_pointwise, build_stencil, PointwiseSpec, StencilSpec,
        StencilYield,
    };
    pub use instencil_core::pipeline::{compile, reference_module, Engine, PipelineOptions};
    pub use instencil_exec::buffer::BufferView;
    pub use instencil_exec::driver::{
        run_compiled_report, run_compiled_sweeps, run_jacobi_sweeps, run_sweeps,
        run_sweeps_opts, run_sweeps_threaded, run_sweeps_with, run_until_converged,
        SweepBatch, DEFAULT_SWEEP_BATCH,
    };
    pub use instencil_exec::{BytecodeEngine, Interpreter, RtVal, Runner, WavefrontPool};
    pub use instencil_obs::{Obs, ObsLevel, RunReport};
    pub use instencil_ir::{FuncBuilder, Module, Type};
    pub use instencil_machine::{autotune, estimate_sweep, xeon_6152_dual, RunConfig};
    pub use instencil_pattern::{presets, Scheduler, StencilPattern, Sweep, WavefrontSchedule};
}
